// Package raftbase is the specification engine shared by the Raft-family
// system specifications (gosyncobj, craft, redisraft, daosraft, asyncraft,
// xraft, xraftkv). Each system instantiates it with a Profile selecting the
// system's protocol dialect (reply formulas, optimistic next-index advance,
// PreVote, log compaction, KV operations) and its bugdb defect set; the
// resulting machine mirrors the corresponding implementation in
// internal/systems handler-for-handler, which is what conformance checking
// (§3.2) demands of a SandTable specification: it describes the actual,
// potentially buggy implementation, not the idealised protocol.
//
// The network sub-state reimplements the paper's reusable TCP/UDP network
// specification modules: per-ordered-pair FIFO channels under TCP semantics
// (with partitions as the only failure), and indexed buffers with loss,
// duplication, and out-of-order delivery under UDP semantics.
package raftbase

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/sandtable-go/sandtable/internal/fp"
	"github.com/sandtable-go/sandtable/internal/spec"
)

// Role values (rendered identically by the implementations' Observe).
const (
	Follower = iota
	PreCandidate
	Candidate
	Leader
)

func roleString(r int) string {
	switch r {
	case Leader:
		return "leader"
	case Candidate:
		return "candidate"
	case PreCandidate:
		return "precandidate"
	default:
		return "follower"
	}
}

// Entry is a replicated log entry (value-semantics; indexes are absolute and
// implicit: the entry at slice position k of node i has absolute index
// snapIndex[i]+k+1).
type Entry struct {
	Term  int
	Value string
}

// Msg is the specification-level message. All kinds share one struct.
type Msg struct {
	Type      string // "rv", "rvr", "ae", "aer", "snap"
	Term      int
	LastIndex int  // rv
	LastTerm  int  // rv
	Pre       bool // rv/rvr: PreVote round
	Granted   bool // rvr
	PrevIndex int  // ae
	PrevTerm  int  // ae
	Entries   []Entry
	Commit    int  // ae
	Flag      bool // aer: success
	NextIndex int  // aer: follower hint
	Retry     bool // ae: sent as a retry after a rejection (craft)
	SnapIndex int  // snap
	SnapTerm  int  // snap
}

func (m *Msg) hash(h *fp.Hasher) {
	h.WriteString(m.Type)
	h.WriteInt(m.Term)
	h.WriteInt(m.LastIndex)
	h.WriteInt(m.LastTerm)
	h.WriteBool(m.Pre)
	h.WriteBool(m.Granted)
	h.WriteInt(m.PrevIndex)
	h.WriteInt(m.PrevTerm)
	h.WriteInt(len(m.Entries))
	for _, e := range m.Entries {
		h.WriteInt(e.Term)
		h.WriteString(e.Value)
	}
	h.WriteInt(m.Commit)
	h.WriteBool(m.Flag)
	h.WriteInt(m.NextIndex)
	h.WriteBool(m.Retry)
	h.WriteInt(m.SnapIndex)
	h.WriteInt(m.SnapTerm)
}

// State is the full specification state: per-node protocol variables, the
// network environment, the budget counters, ghost variables for history
// properties, and the action-property violation flag.
type State struct {
	n int
	// Feature flags copied from the machine options (not part of the
	// fingerprint; they are constants of the model instance and only steer
	// variable rendering).
	snapshots bool
	kv        bool
	// durability enables the crash-consistency fault model (set when the
	// budget allows dirty crashes): the Dur* mirrors below are then
	// maintained and hashed.
	durability bool

	Role     []int
	Term     []int
	VotedFor []int
	Log      [][]Entry
	Commit   []int
	SnapIdx  []int
	SnapTerm []int

	Votes    [][]bool // Votes[i][j]: j granted i's (real) vote this election
	PreVotes [][]bool
	Next     [][]int // leader replication state; nil rows when not leader
	Match    [][]int

	Up []bool

	// Durability mirrors: what each node's crash-durable storage holds, as
	// opposed to the live variables above, which may include writes still
	// in the page cache (written but not fsynced — the implementation's
	// buffered vos.Store journal). A dirty crash rolls the live state back
	// to these. Maintained only when durability is set; syncDurable is the
	// specification-level fsync. DurVote follows VotedFor's -1 convention.
	DurTerm []int
	DurVote []int
	DurLog  [][]Entry

	// Network: Chan[src][dst] is the ordered message buffer; Cut marks
	// severed ordered pairs (crash or partition); Part marks active
	// partition pairs (unordered, kept so restarts do not reconnect them).
	Chan [][][]Msg
	Cut  [][]bool
	Part [][]bool

	// Ghost: the globally committed log prefix, extended whenever any
	// node's commit index advances past its length. Detects inconsistent
	// committed logs (CRaft#2) and durability loss (AsyncRaft#2), and is
	// the linearizability reference for KV reads.
	Committed []Entry

	// Ghost marker: set when a snapshot installation overwrote a
	// conflicting local log — the exact situation CRaft#3's implementation
	// incorrectly rejects; goal-directed conformance uses it to steer a
	// trace into the divergent step.
	SnapConflictInstall bool

	// KV ghost (xraftkv): result of the most recent read, for the
	// linearizability invariant.
	LastReadNode int
	LastReadKey  string
	LastReadVal  string
	LastReadWant string
	LastReadBad  bool

	Counters spec.Counters
	Viol     spec.Violation
}

func newState(n int) *State {
	s := &State{n: n}
	s.Role = make([]int, n)
	s.Term = make([]int, n)
	s.VotedFor = make([]int, n)
	for i := range s.VotedFor {
		s.VotedFor[i] = -1
	}
	s.Log = make([][]Entry, n)
	s.Commit = make([]int, n)
	s.SnapIdx = make([]int, n)
	s.SnapTerm = make([]int, n)
	s.Votes = make([][]bool, n)
	s.PreVotes = make([][]bool, n)
	s.Next = make([][]int, n)
	s.Match = make([][]int, n)
	s.Up = make([]bool, n)
	for i := range s.Up {
		s.Up[i] = true
	}
	s.DurTerm = make([]int, n)
	s.DurVote = make([]int, n)
	for i := range s.DurVote {
		s.DurVote[i] = -1
	}
	s.DurLog = make([][]Entry, n)
	s.Chan = make([][][]Msg, n)
	s.Cut = make([][]bool, n)
	s.Part = make([][]bool, n)
	for i := 0; i < n; i++ {
		s.Chan[i] = make([][]Msg, n)
		s.Cut[i] = make([]bool, n)
		s.Part[i] = make([]bool, n)
	}
	return s
}

// clone deep-copies the state with a flat-backing allocation discipline:
// related slices are carved out of a handful of shared backing arrays with
// exact-capacity (three-index) subslices instead of one allocation each.
// clone runs once per generated successor — it dominates the explorer's
// allocation profile — and the flat layout cuts its allocation count by
// roughly 3x.
//
// Safety of the shared backing rests on two facts: every subslice is carved
// with cap == len, so any later append (Log, DurLog, Chan queues, Committed)
// reallocates instead of growing into a neighbour's region; and in-place
// writes (Votes[i][j] = true, Next[i][j] = k) stay within the row's own
// disjoint region.
func (s *State) clone() *State {
	n := s.n
	c := &State{n: n, snapshots: s.snapshots, kv: s.kv, durability: s.durability}

	// Fixed-size per-node int slices: one backing array, eight views.
	ints := make([]int, 8*n)
	c.Role = ints[0*n : 1*n : 1*n]
	c.Term = ints[1*n : 2*n : 2*n]
	c.VotedFor = ints[2*n : 3*n : 3*n]
	c.Commit = ints[3*n : 4*n : 4*n]
	c.SnapIdx = ints[4*n : 5*n : 5*n]
	c.SnapTerm = ints[5*n : 6*n : 6*n]
	c.DurTerm = ints[6*n : 7*n : 7*n]
	c.DurVote = ints[7*n : 8*n : 8*n]
	copy(c.Role, s.Role)
	copy(c.Term, s.Term)
	copy(c.VotedFor, s.VotedFor)
	copy(c.Commit, s.Commit)
	copy(c.SnapIdx, s.SnapIdx)
	copy(c.SnapTerm, s.SnapTerm)
	copy(c.DurTerm, s.DurTerm)
	copy(c.DurVote, s.DurVote)

	// Up plus the Cut/Part matrices: one flat bool array, one shared outer.
	bools := make([]bool, n+2*n*n)
	c.Up = bools[0:n:n]
	copy(c.Up, s.Up)
	boolRows := make([][]bool, 2*n)
	c.Cut = boolRows[0:n:n]
	c.Part = boolRows[n : 2*n : 2*n]
	off := n
	for i := 0; i < n; i++ {
		c.Cut[i] = bools[off : off+n : off+n]
		copy(c.Cut[i], s.Cut[i])
		off += n
	}
	for i := 0; i < n; i++ {
		c.Part[i] = bools[off : off+n : off+n]
		copy(c.Part[i], s.Part[i])
		off += n
	}

	// Votes/PreVotes: shared outer; non-nil rows carved from one flat array.
	voteRows := make([][]bool, 2*n)
	c.Votes = voteRows[0:n:n]
	c.PreVotes = voteRows[n : 2*n : 2*n]
	nb := 0
	for i := 0; i < n; i++ {
		nb += len(s.Votes[i]) + len(s.PreVotes[i])
	}
	var bflat []bool
	if nb > 0 {
		bflat = make([]bool, 0, nb)
	}
	cloneBoolRow := func(row []bool) []bool {
		if row == nil {
			return nil
		}
		start := len(bflat)
		bflat = append(bflat, row...)
		return bflat[start:len(bflat):len(bflat)]
	}
	for i := 0; i < n; i++ {
		c.Votes[i] = cloneBoolRow(s.Votes[i])
		c.PreVotes[i] = cloneBoolRow(s.PreVotes[i])
	}

	// Next/Match: same flat discipline with ints.
	repRows := make([][]int, 2*n)
	c.Next = repRows[0:n:n]
	c.Match = repRows[n : 2*n : 2*n]
	ni := 0
	for i := 0; i < n; i++ {
		ni += len(s.Next[i]) + len(s.Match[i])
	}
	var iflat []int
	if ni > 0 {
		iflat = make([]int, 0, ni)
	}
	cloneIntRow := func(row []int) []int {
		if row == nil {
			return nil
		}
		start := len(iflat)
		iflat = append(iflat, row...)
		return iflat[start:len(iflat):len(iflat)]
	}
	for i := 0; i < n; i++ {
		c.Next[i] = cloneIntRow(s.Next[i])
		c.Match[i] = cloneIntRow(s.Match[i])
	}

	// Log/DurLog/Committed entries: shared outer for the two log matrices,
	// one flat entry array for every copied entry.
	logRows := make([][]Entry, 2*n)
	c.Log = logRows[0:n:n]
	c.DurLog = logRows[n : 2*n : 2*n]
	ne := len(s.Committed)
	for i := 0; i < n; i++ {
		ne += len(s.Log[i]) + len(s.DurLog[i])
	}
	var eflat []Entry
	if ne > 0 {
		eflat = make([]Entry, 0, ne)
	}
	cloneEntries := func(es []Entry) []Entry {
		if len(es) == 0 {
			return nil
		}
		start := len(eflat)
		eflat = append(eflat, es...)
		return eflat[start:len(eflat):len(eflat)]
	}
	for i := 0; i < n; i++ {
		c.Log[i] = cloneEntries(s.Log[i])
		c.DurLog[i] = cloneEntries(s.DurLog[i])
	}
	c.Committed = cloneEntries(s.Committed)

	// Channels: shared outer, flat row array, one flat message array.
	c.Chan = make([][][]Msg, n)
	chanRows := make([][]Msg, n*n)
	nm := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			nm += len(s.Chan[i][j])
		}
	}
	var mflat []Msg
	if nm > 0 {
		mflat = make([]Msg, 0, nm)
	}
	for i := 0; i < n; i++ {
		c.Chan[i] = chanRows[i*n : (i+1)*n : (i+1)*n]
		for j := 0; j < n; j++ {
			if q := s.Chan[i][j]; len(q) > 0 {
				start := len(mflat)
				mflat = append(mflat, q...)
				c.Chan[i][j] = mflat[start:len(mflat):len(mflat)]
			}
		}
	}

	c.SnapConflictInstall = s.SnapConflictInstall
	c.LastReadNode = s.LastReadNode
	c.LastReadKey = s.LastReadKey
	c.LastReadVal = s.LastReadVal
	c.LastReadWant = s.LastReadWant
	c.LastReadBad = s.LastReadBad
	c.Counters = s.Counters
	c.Viol = s.Viol
	return c
}

// Fingerprint implements spec.State: the identity-permutation combine of
// the orbit sub-digest decomposition (see orbit.go), so the flat hash, the
// permuted hash, and the incremental min-of-orbit share one layout by
// construction.
func (s *State) Fingerprint() uint64 {
	var nodeBuf [orbitMaxNodes]uint64
	var edgeBuf [orbitMaxNodes * orbitMaxNodes]uint64
	node, edge := orbitBuffers(s.n, &nodeBuf, &edgeBuf)
	g := s.orbitDigests(node, edge)
	id := spec.PermTableFor(s.n).Identity
	return s.orbitCombine(node, edge, g, id, id)
}

// Vars implements spec.State; the rendering matches the implementations'
// Observe output and the engine's network variables so conformance can
// compare them key by key.
func (s *State) Vars() map[string]string {
	m := make(map[string]string, 8*s.n)
	for i := 0; i < s.n; i++ {
		if s.durability {
			// Durable-storage view (rendered for crashed nodes too — it is
			// exactly what a restart would recover).
			m[fmt.Sprintf("durTerm[%d]", i)] = strconv.Itoa(s.DurTerm[i])
			m[fmt.Sprintf("durVote[%d]", i)] = strconv.Itoa(s.DurVote[i])
			m[fmt.Sprintf("durLog[%d]", i)] = formatLog(s.DurLog[i])
		}
		if !s.Up[i] {
			m[fmt.Sprintf("status[%d]", i)] = "crashed"
			continue
		}
		m[fmt.Sprintf("status[%d]", i)] = "up"
		m[fmt.Sprintf("role[%d]", i)] = roleString(s.Role[i])
		m[fmt.Sprintf("term[%d]", i)] = strconv.Itoa(s.Term[i])
		m[fmt.Sprintf("votedFor[%d]", i)] = strconv.Itoa(s.VotedFor[i])
		m[fmt.Sprintf("log[%d]", i)] = formatLog(s.Log[i])
		m[fmt.Sprintf("commit[%d]", i)] = strconv.Itoa(s.Commit[i])
		if s.snapshots {
			m[fmt.Sprintf("snapshot[%d]", i)] = fmt.Sprintf("%d@%d", s.SnapIdx[i], s.SnapTerm[i])
		}
		if s.Role[i] == Leader {
			m[fmt.Sprintf("next[%d]", i)] = formatPeerInts(s.Next[i], i)
			m[fmt.Sprintf("match[%d]", i)] = formatPeerInts(s.Match[i], i)
		} else {
			m[fmt.Sprintf("next[%d]", i)] = "-"
			m[fmt.Sprintf("match[%d]", i)] = "-"
		}
		if s.Role[i] == Candidate {
			m[fmt.Sprintf("votes[%d]", i)] = formatVoteSet(s.Votes[i])
		} else {
			m[fmt.Sprintf("votes[%d]", i)] = "-"
		}
	}
	for src := 0; src < s.n; src++ {
		for dst := 0; dst < s.n; dst++ {
			if src == dst {
				continue
			}
			m[fmt.Sprintf("net[%d->%d]", src, dst)] = strconv.Itoa(len(s.Chan[src][dst]))
		}
	}
	if s.kv && s.LastReadKey != "" && s.Up[s.LastReadNode] {
		m[fmt.Sprintf("lastRead[%d]", s.LastReadNode)] = s.LastReadKey + "=" + s.LastReadVal
	}
	s.Counters.Vars(m)
	m["violation"] = s.Viol.Flag
	return m
}

func formatLog(log []Entry) string {
	if len(log) == 0 {
		return "[]"
	}
	parts := make([]string, len(log))
	for i, e := range log {
		parts[i] = fmt.Sprintf("%d:%s", e.Term, e.Value)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func formatPeerInts(vals []int, self int) string {
	parts := make([]string, 0, len(vals))
	for i, v := range vals {
		if i == self {
			parts = append(parts, "_")
			continue
		}
		parts = append(parts, strconv.Itoa(v))
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func formatVoteSet(votes []bool) string {
	var ids []int
	for i, v := range votes {
		if v {
			ids = append(ids, i)
		}
	}
	sort.Ints(ids)
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.Itoa(id)
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// Log helpers (absolute indexing, snapshot-aware).

func (s *State) lastIndex(i int) int { return s.SnapIdx[i] + len(s.Log[i]) }

func (s *State) logTerm(i, abs int) int {
	switch {
	case abs == s.SnapIdx[i]:
		return s.SnapTerm[i]
	case abs > s.SnapIdx[i] && abs <= s.lastIndex(i):
		return s.Log[i][abs-s.SnapIdx[i]-1].Term
	default:
		return 0
	}
}

func (s *State) entryAt(i, abs int) (Entry, bool) {
	if abs > s.SnapIdx[i] && abs <= s.lastIndex(i) {
		return s.Log[i][abs-s.SnapIdx[i]-1], true
	}
	return Entry{}, false
}

// entriesFrom copies the suffix of node i's log starting at absolute index
// from (entries below the snapshot boundary are unavailable).
func (s *State) entriesFrom(i, from int) []Entry {
	if from <= s.SnapIdx[i] {
		from = s.SnapIdx[i] + 1
	}
	if from > s.lastIndex(i) {
		return nil
	}
	return append([]Entry(nil), s.Log[i][from-s.SnapIdx[i]-1:]...)
}

// truncateTo cuts node i's log so lastIndex becomes abs.
func (s *State) truncateTo(i, abs int) {
	if abs < s.SnapIdx[i] {
		abs = s.SnapIdx[i]
	}
	s.Log[i] = s.Log[i][:abs-s.SnapIdx[i]]
}

func countVotes(votes []bool) int {
	n := 0
	for _, v := range votes {
		if v {
			n++
		}
	}
	return n
}

// Permute returns the state with node identities permuted (symmetry
// reduction support).
func (s *State) permute(perm []int) *State {
	c := newState(s.n)
	c.snapshots = s.snapshots
	c.kv = s.kv
	c.durability = s.durability
	for i := 0; i < s.n; i++ {
		pi := perm[i]
		c.Role[pi] = s.Role[i]
		c.Term[pi] = s.Term[i]
		if s.VotedFor[i] >= 0 {
			c.VotedFor[pi] = perm[s.VotedFor[i]]
		} else {
			c.VotedFor[pi] = -1
		}
		c.Log[pi] = append([]Entry(nil), s.Log[i]...)
		c.DurTerm[pi] = s.DurTerm[i]
		if s.DurVote[i] >= 0 {
			c.DurVote[pi] = perm[s.DurVote[i]]
		} else {
			c.DurVote[pi] = -1
		}
		c.DurLog[pi] = append([]Entry(nil), s.DurLog[i]...)
		c.Commit[pi] = s.Commit[i]
		c.SnapIdx[pi] = s.SnapIdx[i]
		c.SnapTerm[pi] = s.SnapTerm[i]
		c.Up[pi] = s.Up[i]
		if s.Votes[i] != nil {
			c.Votes[pi] = permuteBools(s.Votes[i], perm)
		} else {
			c.Votes[pi] = nil
		}
		if s.PreVotes[i] != nil {
			c.PreVotes[pi] = permuteBools(s.PreVotes[i], perm)
		} else {
			c.PreVotes[pi] = nil
		}
		if s.Next[i] != nil {
			c.Next[pi] = permuteInts(s.Next[i], perm)
		} else {
			c.Next[pi] = nil
		}
		if s.Match[i] != nil {
			c.Match[pi] = permuteInts(s.Match[i], perm)
		} else {
			c.Match[pi] = nil
		}
		for j := 0; j < s.n; j++ {
			if i == j {
				continue
			}
			c.Chan[pi][perm[j]] = append([]Msg(nil), s.Chan[i][j]...)
			c.Cut[pi][perm[j]] = s.Cut[i][j]
			c.Part[pi][perm[j]] = s.Part[i][j]
		}
	}
	c.Committed = append([]Entry(nil), s.Committed...)
	c.SnapConflictInstall = s.SnapConflictInstall
	c.LastReadNode = perm[s.LastReadNode]
	c.LastReadKey = s.LastReadKey
	c.LastReadVal = s.LastReadVal
	c.LastReadWant = s.LastReadWant
	c.LastReadBad = s.LastReadBad
	c.Counters = s.Counters
	c.Viol = s.Viol
	return c
}

func permuteBools(v []bool, perm []int) []bool {
	out := make([]bool, len(v))
	for i, b := range v {
		out[perm[i]] = b
	}
	return out
}

func permuteInts(v []int, perm []int) []int {
	out := make([]int, len(v))
	for i, x := range v {
		out[perm[i]] = x
	}
	return out
}
