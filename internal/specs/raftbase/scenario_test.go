package raftbase_test

import (
	"testing"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/scenario"
	"github.com/sandtable-go/sandtable/internal/spec"
	scraft "github.com/sandtable-go/sandtable/internal/specs/craft"
	sdaos2 "github.com/sandtable-go/sandtable/internal/specs/daosraft"
)

// TestSnapshotTransferRepairsLaggingFollower drives the fixed craft spec
// through compaction and a snapshot transfer: the lagging follower (whose
// AppendEntries was lost) installs the snapshot and catches up — the
// behaviour CRaft#3's implementation breaks.
func TestSnapshotTransferRepairsLaggingFollower(t *testing.T) {
	cfg := spec.Config{Name: "n3w1", Nodes: 3, Workload: []string{"v1"}}
	b := spec.Budget{Name: "snap", MaxTimeouts: 3, MaxRequests: 2, MaxDrops: 1, MaxBuffer: 3, MaxCompactions: 1}
	m := scraft.New(cfg, b, bugdb.NoBugs())
	tr, err := scenario.Run(m, []string{
		"TimeoutElection n0",
		"HandleRequestVote 0->1",
		"HandleRequestVoteResponse 1->0", // node 0 leads
		`ClientRequest n0 "v1"`,
		"HandleAppendEntries 0->1 [1]",     // replicate to node 1
		"HandleAppendEntriesResponse 1->0", // commit
		"CompactLog n0",                    // entry compacted
		"DropMessage 0->2 [2]",             // node 2 misses the entry
		"TimeoutHeartbeat n0",              // snapshot transfer to node 2
		"HandleSnapshot 0->2 [2]",          // install
	})
	if err != nil {
		t.Fatal(err)
	}
	final := tr.Steps[len(tr.Steps)-1].Vars
	if final["snapshot[2]"] != "1@1" {
		t.Errorf("follower snapshot = %s, want 1@1", final["snapshot[2]"])
	}
	if final["commit[2]"] != "1" {
		t.Errorf("follower commit = %s, want 1", final["commit[2]"])
	}
	if final["log[2]"] != "[]" {
		t.Errorf("follower log = %s, want [] (covered by the snapshot)", final["log[2]"])
	}
	if v := final["violation"]; v != "" {
		t.Fatalf("violation flag set: %s", v)
	}
}

// TestDuplicatedAppendEntriesIsIdempotent verifies UDP duplication safety in
// the fixed craft spec: delivering the same AppendEntries twice leaves the
// follower's log and commit unchanged after the first delivery.
func TestDuplicatedAppendEntriesIsIdempotent(t *testing.T) {
	cfg := spec.Config{Name: "n2w1", Nodes: 2, Workload: []string{"v1"}}
	b := spec.Budget{Name: "dup", MaxTimeouts: 2, MaxRequests: 1, MaxDuplicates: 1, MaxBuffer: 3, MaxCompactions: 1}
	m := scraft.New(cfg, b, bugdb.NoBugs())
	tr, err := scenario.Run(m, []string{
		"TimeoutElection n0",
		"HandleRequestVote 0->1",
		"HandleRequestVoteResponse 1->0",
		`ClientRequest n0 "v1"`,
		"DuplicateMessage 0->1 [1]",    // duplicate the eager AppendEntries
		"HandleAppendEntries 0->1 [1]", // first copy appends
	})
	if err != nil {
		t.Fatal(err)
	}
	after1 := tr.Steps[len(tr.Steps)-1].Vars
	if after1["log[1]"] != "[1:v1]" {
		t.Fatalf("after first delivery log = %s", after1["log[1]"])
	}
	// Deliver the duplicate (now the tail of the channel).
	tr2, err := scenario.Run(m, []string{
		"TimeoutElection n0",
		"HandleRequestVote 0->1",
		"HandleRequestVoteResponse 1->0",
		`ClientRequest n0 "v1"`,
		"DuplicateMessage 0->1 [1]",
		"HandleAppendEntries 0->1 [1]",
		"HandleAppendEntries 0->1 [1]", // the duplicate
	})
	if err != nil {
		t.Fatal(err)
	}
	after2 := tr2.Steps[len(tr2.Steps)-1].Vars
	if after2["log[1]"] != after1["log[1]"] {
		t.Errorf("duplicate changed the log: %s -> %s", after1["log[1]"], after2["log[1]"])
	}
	if after2["violation"] != "" {
		t.Errorf("violation flag: %s", after2["violation"])
	}
}

// TestLiveLeaderSuppressesPreVote checks the fixed PreVote rule at the spec
// level: a live leader refuses pre-votes (DaosRaft#1 is the missing check).
func TestLiveLeaderSuppressesPreVote(t *testing.T) {
	cfg := spec.Config{Name: "n2w1", Nodes: 2, Workload: []string{"v1"}}
	b := spec.Budget{Name: "pv", MaxTimeouts: 3, MaxBuffer: 4}
	mFixed := sdaos2.New(cfg, b, bugdb.NoBugs())
	tr, err := scenario.Run(mFixed, []string{
		"TimeoutElection n0", // prevote round
		"HandleRequestVote 0->1",
		"HandleRequestVoteResponse 1->0", // prevote granted: real election
		"HandleRequestVote 0->1",
		"HandleRequestVoteResponse 1->0", // node 0 leads
		"TimeoutElection n1",             // node 1 tries a prevote
		"HandleRequestVote 1->0",         // the live leader refuses it
		"HandleAppendEntries 0->1",       // the leader's heartbeat wins node 1 back
		"HandleRequestVoteResponse 0->1", // the refusal arrives: ignored
	})
	if err != nil {
		t.Fatal(err)
	}
	final := tr.Steps[len(tr.Steps)-1].Vars
	if final["role[1]"] != "follower" {
		t.Errorf("node 1 role = %s, want follower (prevote suppressed)", final["role[1]"])
	}
	if final["role[0]"] != "leader" || final["term[0]"] != "1" {
		t.Errorf("node 0 must keep its term-1 leadership: role=%s term=%s", final["role[0]"], final["term[0]"])
	}
	if final["violation"] != "" {
		t.Errorf("violation flag: %s", final["violation"])
	}
}
