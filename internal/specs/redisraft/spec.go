// Package redisraft is the formal specification of the redisraft system:
// the craft core adopted downstream with the PreVote extension, TCP
// semantics, and the upstream CRaft defects #2/#4/#6/#9 fixed.
package redisraft

import (
	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/specs/raftbase"
	"github.com/sandtable-go/sandtable/internal/vnet"
)

// New builds the redisraft specification machine.
func New(cfg spec.Config, b spec.Budget, bugs bugdb.Set) *raftbase.Machine {
	return raftbase.New(raftbase.Options{
		System:    "redisraft",
		Profile:   raftbase.CRaft,
		Transport: vnet.TCP,
		Snapshots: true,
		PreVote:   true,
		Bugs:      bugs,
		Config:    cfg,
		Budget:    b,
	})
}
