package zabkeeper

import (
	"fmt"

	"github.com/sandtable-go/sandtable/internal/spec"
)

// Invariants implements spec.Machine. The headline property is
// VoteTotalOrder — the oracle for ZabKeeper#1 ("votes are not total
// ordered", the ZOOKEEPER-1419 analogue) — alongside Zab's structural
// safety properties.
func (m *Machine) Invariants() []spec.Invariant {
	return []spec.Invariant{
		spec.ViolationInvariant(func(st spec.State) string { return st.(*State).Viol.Flag }),
		{Name: "VoteTotalOrder", Check: m.voteTotalOrder},
		{Name: "AtMostOneActiveLeaderPerEpoch", Check: m.oneLeaderPerEpoch},
		{Name: "CommittedHistoryConsistency", Check: m.committedConsistency},
		{Name: "HistoryZxidOrder", Check: m.historyZxidOrder},
		{Name: "CommitWithinHistory", Check: m.commitWithinHistory},
	}
}

// voteTotalOrder: the vote comparator ("totalOrderPredicate") must be a
// strict total order over the reachable vote space — the votes LOOKING
// nodes currently hold plus the vote every up node would cast on its next
// election, (node id, last zxid). For every distinct pair, exactly one
// direction may supersede. The buggy comparator makes two votes whose
// zxids cross epochs supersede each other, so elections oscillate and
// never settle (ZOOKEEPER-1419).
func (m *Machine) voteTotalOrder(st spec.State) error {
	s := st.(*State)
	var votes []Vote
	var owner []int
	for i := 0; i < s.n; i++ {
		if !s.Up[i] {
			continue
		}
		if s.ZState[i] == Looking {
			votes = append(votes, s.Vote[i])
			owner = append(owner, i)
		}
		e, c := s.lastZxid(i)
		votes = append(votes, Vote{Leader: i, Epoch: e, Counter: c})
		owner = append(owner, i)
	}
	for x := range votes {
		for y := x + 1; y < len(votes); y++ {
			a, b := votes[x], votes[y]
			if a == b {
				continue
			}
			ab, ba := m.Supersedes(a, b), m.Supersedes(b, a)
			if ab == ba {
				return fmt.Errorf("votes %s (node %d) and %s (node %d) are not totally ordered (a>b=%v, b>a=%v)",
					a, owner[x], b, owner[y], ab, ba)
			}
		}
	}
	return nil
}

// oneLeaderPerEpoch: two activated leaders never share an established epoch.
func (m *Machine) oneLeaderPerEpoch(st spec.State) error {
	s := st.(*State)
	for i := 0; i < s.n; i++ {
		if !s.Up[i] || s.ZState[i] != Leading || !s.Activated[i] {
			continue
		}
		for j := i + 1; j < s.n; j++ {
			if s.Up[j] && s.ZState[j] == Leading && s.Activated[j] && s.PendEpoch[i] == s.PendEpoch[j] {
				return fmt.Errorf("nodes %d and %d both lead epoch %d", i, j, s.PendEpoch[i])
			}
		}
	}
	return nil
}

// committedConsistency: every node's committed prefix agrees with the ghost
// committed transaction sequence.
func (m *Machine) committedConsistency(st spec.State) error {
	s := st.(*State)
	for i := 0; i < s.n; i++ {
		if !s.Up[i] {
			continue
		}
		hi := s.Commit[i]
		if hi > len(s.Committed) {
			hi = len(s.Committed)
		}
		for idx := 1; idx <= hi; idx++ {
			if s.History[i][idx-1] != s.Committed[idx-1] {
				return fmt.Errorf("node %d committed txn %d is %d.%d:%s, cluster committed %d.%d:%s",
					i, idx, s.History[i][idx-1].Epoch, s.History[i][idx-1].Counter, s.History[i][idx-1].Value,
					s.Committed[idx-1].Epoch, s.Committed[idx-1].Counter, s.Committed[idx-1].Value)
			}
		}
	}
	return nil
}

// historyZxidOrder: zxids within each history are strictly increasing.
func (m *Machine) historyZxidOrder(st spec.State) error {
	s := st.(*State)
	for i := 0; i < s.n; i++ {
		h := s.History[i]
		for k := 1; k < len(h); k++ {
			prev, cur := h[k-1], h[k]
			if cur.Epoch < prev.Epoch || (cur.Epoch == prev.Epoch && cur.Counter <= prev.Counter) {
				return fmt.Errorf("node %d history not zxid-ordered at %d: %d.%d after %d.%d",
					i, k, cur.Epoch, cur.Counter, prev.Epoch, prev.Counter)
			}
		}
	}
	return nil
}

// commitWithinHistory: a node never commits past its history.
func (m *Machine) commitWithinHistory(st spec.State) error {
	s := st.(*State)
	for i := 0; i < s.n; i++ {
		if s.Commit[i] > len(s.History[i]) {
			return fmt.Errorf("node %d committed %d beyond history length %d", i, s.Commit[i], len(s.History[i]))
		}
	}
	return nil
}
