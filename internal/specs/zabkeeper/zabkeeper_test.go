package zabkeeper_test

import (
	"math/rand"
	"testing"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/explorer"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/spec/spectest"
	"github.com/sandtable-go/sandtable/internal/specs/zabkeeper"
)

func cfg() spec.Config {
	return spec.Config{Name: "n3w1", Nodes: 3, Workload: []string{"v1"}}
}

func electionBudget() spec.Budget {
	return spec.Budget{Name: "el", MaxTimeouts: 2, MaxBuffer: 3}
}

func TestSupersedesIsTotalOrderWhenFixed(t *testing.T) {
	m := zabkeeper.New(cfg(), electionBudget(), bugdb.NoBugs())
	votes := []zabkeeper.Vote{}
	for leader := 0; leader < 3; leader++ {
		for e := 0; e < 3; e++ {
			for c := 0; c < 3; c++ {
				votes = append(votes, zabkeeper.Vote{Leader: leader, Epoch: e, Counter: c})
			}
		}
	}
	for _, a := range votes {
		for _, b := range votes {
			if a == b {
				continue
			}
			if m.Supersedes(a, b) == m.Supersedes(b, a) {
				t.Fatalf("fixed comparator not total: %v vs %v", a, b)
			}
		}
	}
}

func TestBuggySupersedesLosesAntisymmetry(t *testing.T) {
	m := zabkeeper.New(cfg(), electionBudget(), bugdb.NoBugs().With(bugdb.ZabVoteOrder))
	a := zabkeeper.Vote{Leader: 0, Epoch: 2, Counter: 1}
	b := zabkeeper.Vote{Leader: 1, Epoch: 1, Counter: 2}
	if !m.Supersedes(a, b) || !m.Supersedes(b, a) {
		t.Fatal("the buggy comparator should order both directions for crossing zxids")
	}
}

func TestLeaderElectableAndActivates(t *testing.T) {
	m := zabkeeper.New(cfg(), electionBudget(), bugdb.NoBugs())
	opts := explorer.DefaultOptions()
	opts.MaxStates = 30000
	opts.Goal = func(st spec.State) bool {
		s := st.(*zabkeeper.State)
		for i := range s.Activated {
			if s.Activated[i] {
				return true
			}
		}
		return false
	}
	res := explorer.NewChecker(m, opts).Run()
	if v := res.FirstViolation(); v != nil {
		t.Fatalf("fixed zab violated %s: %v\n%s", v.Invariant, v.Err, v.Trace.Format(false))
	}
	if !res.GoalReached {
		t.Fatalf("no activated leader reachable in %d states", res.DistinctStates)
	}
}

func TestCommitReachableInFixedBuild(t *testing.T) {
	b := spec.Budget{Name: "commit", MaxTimeouts: 1, MaxRequests: 1, MaxBuffer: 3}
	m := zabkeeper.New(cfg(), b, bugdb.NoBugs())
	opts := explorer.DefaultOptions()
	opts.MaxStates = 50000
	opts.Goal = func(st spec.State) bool {
		s := st.(*zabkeeper.State)
		for i := range s.Commit {
			if s.Commit[i] > 0 {
				return true
			}
		}
		return false
	}
	res := explorer.NewChecker(m, opts).Run()
	if v := res.FirstViolation(); v != nil {
		t.Fatalf("violation: %v", v)
	}
	if !res.GoalReached {
		t.Fatalf("no commit reachable in %d states", res.DistinctStates)
	}
}

func TestPermuteRoundTripPreservesFingerprint(t *testing.T) {
	m := zabkeeper.New(cfg(), spec.Budget{Name: "x", MaxTimeouts: 2, MaxRequests: 1, MaxCrashes: 1, MaxRestarts: 1, MaxBuffer: 3}, bugdb.AllBugs("zabkeeper"))
	rng := rand.New(rand.NewSource(11))
	cur := m.Init()[0]
	perm := []int{2, 0, 1}
	inv := []int{1, 2, 0}
	for step := 0; step < 250; step++ {
		fp := cur.Fingerprint()
		round := m.Permute(m.Permute(cur, perm), inv)
		if round.Fingerprint() != fp {
			t.Fatalf("step %d: permute round trip changed fingerprint", step)
		}
		// Permuted states must render permuted variables consistently.
		pv := m.Permute(cur, perm).Vars()
		cv := cur.Vars()
		if cv["state[0]"] != pv["state[2]"] {
			t.Fatalf("step %d: permuted state[2]=%s, original state[0]=%s", step, pv["state[2]"], cv["state[0]"])
		}
		succs := m.Next(cur)
		if len(succs) == 0 {
			break
		}
		cur = succs[rng.Intn(len(succs))].State
	}
}

func TestVoteOrderBugFoundByBFS(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute BFS")
	}
	t.Parallel()
	b := spec.Budget{Name: "zab", MaxTimeouts: 2, MaxRequests: 3, MaxBuffer: 3}
	m := zabkeeper.New(cfg(), b, bugdb.NoBugs().With(bugdb.ZabVoteOrder))
	opts := explorer.DefaultOptions()
	res := explorer.NewChecker(m, opts).Run()
	v := res.FirstViolation()
	if v == nil {
		t.Fatalf("vote-order violation not found (%d states)", res.DistinctStates)
	}
	if v.Invariant != "VoteTotalOrder" {
		t.Fatalf("violated %s (%v), want VoteTotalOrder", v.Invariant, v.Err)
	}
}

// TestOrbitFingerprintMatchesReference property-tests the spec.OrbitHasher
// contract (incremental min-of-orbit == materialised reference min) through
// the shared spectest harness, under the full fault budget so vote-carrying
// messages, crashes, and partitions all appear in the walked states.
func TestOrbitFingerprintMatchesReference(t *testing.T) {
	m := zabkeeper.New(cfg(), spec.Budget{Name: "orbit", MaxTimeouts: 2, MaxRequests: 2, MaxCrashes: 1, MaxRestarts: 1, MaxPartitions: 1, MaxBuffer: 3}, bugdb.AllBugs("zabkeeper"))
	spectest.AssertOrbitEquiv(t, m, 4, 120, 29)
}

func TestPermutedFingerprintMatchesReference(t *testing.T) {
	m := zabkeeper.New(cfg(), spec.Budget{Name: "pf", MaxTimeouts: 2, MaxRequests: 2, MaxCrashes: 1, MaxRestarts: 1, MaxPartitions: 1, MaxBuffer: 3}, bugdb.AllBugs("zabkeeper"))
	perms := spec.Permutations(3)
	rng := rand.New(rand.NewSource(21))
	cur := m.Init()[0]
	for step := 0; step < 400; step++ {
		for _, p := range perms {
			want := m.Permute(cur, p).Fingerprint()
			got := m.PermutedFingerprint(cur, p)
			if got != want {
				t.Fatalf("step %d perm %v: fast fingerprint %x != reference %x", step, p, got, want)
			}
		}
		succs := m.Next(cur)
		if len(succs) == 0 {
			break
		}
		cur = succs[rng.Intn(len(succs))].State
	}
}
