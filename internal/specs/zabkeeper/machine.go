package zabkeeper

import (
	"fmt"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/trace"
)

// Machine is the zabkeeper specification.
type Machine struct {
	system string
	n      int
	cfg    spec.Config
	budget spec.Budget
	bugs   bugdb.Set
}

// New builds the zabkeeper specification machine.
func New(cfg spec.Config, b spec.Budget, bugs bugdb.Set) *Machine {
	return &Machine{system: "zabkeeper", n: cfg.Nodes, cfg: cfg, budget: b, bugs: bugs}
}

// Name implements spec.Machine.
func (m *Machine) Name() string { return m.system }

// Init implements spec.Machine.
func (m *Machine) Init() []spec.State { return []spec.State{newState(m.n)} }

// NumNodes implements spec.Symmetric.
func (m *Machine) NumNodes() int { return m.n }

// Permute implements spec.Symmetric.
func (m *Machine) Permute(st spec.State, perm []int) spec.State {
	return st.(*State).permute(perm)
}

func (m *Machine) quorum() int { return m.n/2 + 1 }

// Supersedes is the FLE vote comparator ("totalOrderPredicate"). The fixed
// comparator orders votes lexicographically by (epoch, counter, leader id).
// BUG(ZabKeeper#1): the buggy comparator treats a higher epoch OR a higher
// counter as superseding, which loses antisymmetry once vote zxids cross
// epochs — the vote order is no longer total, and leader election never
// settles (the ZOOKEEPER-1419 analogue).
func (m *Machine) Supersedes(a, b Vote) bool {
	if m.bugs.Has(bugdb.ZabVoteOrder) {
		return a.Epoch > b.Epoch || a.Counter > b.Counter ||
			(a.Epoch == b.Epoch && a.Counter == b.Counter && a.Leader > b.Leader)
	}
	if a.Epoch != b.Epoch {
		return a.Epoch > b.Epoch
	}
	if a.Counter != b.Counter {
		return a.Counter > b.Counter
	}
	return a.Leader > b.Leader
}

// Next implements spec.Machine.
func (m *Machine) Next(st spec.State) []spec.Succ {
	return m.AppendNext(st, nil)
}

// AppendNext implements spec.BufferedMachine: successors are appended to buf
// so the explorer can reuse one scratch buffer per worker (see
// spec.BufferedMachine for the ownership rules).
func (m *Machine) AppendNext(st spec.State, buf []spec.Succ) []spec.Succ {
	s := st.(*State)
	if s.Viol.Flag != "" {
		return buf
	}
	out := buf
	add := func(ev trace.Event, n *State) {
		if m.budget.MaxBuffer > 0 {
			for i := 0; i < m.n; i++ {
				for j := 0; j < m.n; j++ {
					if len(n.Chan[i][j]) > m.budget.MaxBuffer {
						return
					}
				}
			}
		}
		out = append(out, spec.Succ{Event: ev, State: n})
	}
	b := m.budget

	for i := 0; i < m.n; i++ {
		if !s.Up[i] {
			continue
		}
		// Election timeout: the node (re-)enters leader election.
		if s.Counters.CanTimeout(b) {
			n := s.clone()
			n.Counters.Timeouts++
			m.startElection(n, i)
			add(trace.Event{Type: trace.EvTimeout, Action: "TimeoutElection", Node: i, Payload: "election"}, n)
		}
		// Client requests served by an activated leader.
		if s.ZState[i] == Leading && s.Activated[i] && s.Counters.CanRequest(b) {
			for _, v := range m.cfg.Workload {
				n := s.clone()
				n.Counters.Requests++
				m.clientRequest(n, i, v)
				add(trace.Event{Type: trace.EvRequest, Action: "ClientRequest", Node: i, Payload: v}, n)
			}
		}
		// Node crash.
		if s.Counters.CanCrash(b) {
			n := s.clone()
			n.Counters.Crashes++
			m.crash(n, i)
			add(trace.Event{Type: trace.EvCrash, Action: "NodeCrash", Node: i}, n)
		}
	}
	for i := 0; i < m.n; i++ {
		if s.Up[i] || !s.Counters.CanRestart(b) {
			continue
		}
		n := s.clone()
		n.Counters.Restarts++
		m.restart(n, i)
		add(trace.Event{Type: trace.EvRestart, Action: "NodeStart", Node: i}, n)
	}

	// Message deliveries (TCP: head of each channel).
	for src := 0; src < m.n; src++ {
		for dst := 0; dst < m.n; dst++ {
			if src == dst || len(s.Chan[src][dst]) == 0 || !s.Up[dst] {
				continue
			}
			n := s.clone()
			q := n.Chan[src][dst]
			msg := q[0]
			n.Chan[src][dst] = q[1:]
			action := m.dispatch(n, src, dst, msg)
			add(trace.Event{Type: trace.EvDeliver, Action: action, Node: dst, Peer: src}, n)
		}
	}

	// Partitions and recovery.
	for a := 0; a < m.n; a++ {
		for bn := a + 1; bn < m.n; bn++ {
			if !s.Part[a][bn] && s.Counters.CanPartition(b) {
				n := s.clone()
				n.Counters.Partitions++
				n.Part[a][bn], n.Part[bn][a] = true, true
				n.Cut[a][bn], n.Cut[bn][a] = true, true
				n.Chan[a][bn], n.Chan[bn][a] = nil, nil
				add(trace.Event{Type: trace.EvPartition, Action: "NetworkPartition", Node: a, Peer: bn}, n)
			}
			if s.Part[a][bn] {
				n := s.clone()
				n.Part[a][bn], n.Part[bn][a] = false, false
				if n.Up[a] && n.Up[bn] {
					n.Cut[a][bn], n.Cut[bn][a] = false, false
				}
				add(trace.Event{Type: trace.EvRecover, Action: "NetworkRecover", Node: a, Peer: bn}, n)
			}
		}
	}
	return out
}

func (s *State) send(src, dst int, msg Msg) {
	if src == dst || s.Cut[src][dst] {
		return
	}
	s.Chan[src][dst] = append(s.Chan[src][dst], msg)
}

func (m *Machine) dispatch(s *State, src, dst int, msg Msg) string {
	switch msg.Type {
	case "notif":
		m.handleNotification(s, dst, src, msg)
		return "HandleNotification"
	case "finfo":
		m.handleFollowerInfo(s, dst, src, msg)
		return "HandleFollowerInfo"
	case "sync":
		m.handleSync(s, dst, src, msg)
		return "HandleSync"
	case "ackld":
		m.handleAckLeader(s, dst, src, msg)
		return "HandleAckLeader"
	case "prop":
		m.handleProposal(s, dst, src, msg)
		return "HandleProposal"
	case "ack":
		m.handleAck(s, dst, src, msg)
		return "HandleAck"
	case "commit":
		m.handleCommit(s, dst, src, msg)
		return "HandleCommit"
	default:
		panic(fmt.Sprintf("zabkeeper: unknown message type %q", msg.Type))
	}
}

// startElection: the node goes LOOKING, bumps its round, votes for itself
// with its own last zxid, and notifies every connected peer.
func (m *Machine) startElection(s *State, i int) {
	s.ZState[i] = Looking
	s.Round[i]++
	e, c := s.lastZxid(i)
	s.Vote[i] = Vote{Leader: i, Epoch: e, Counter: c}
	s.Recv[i] = emptyRecv(m.n)
	s.Recv[i][i] = s.Vote[i]
	s.LeaderID[i] = -1
	s.Synced[i] = nil
	s.Acked[i] = nil
	s.Activated[i] = false
	m.broadcastNotif(s, i)
}

func (m *Machine) broadcastNotif(s *State, i int) {
	for p := 0; p < m.n; p++ {
		if p == i {
			continue
		}
		s.send(i, p, Msg{Type: "notif", Round: s.Round[i], State: s.ZState[i], Vote: s.Vote[i]})
	}
}

func (m *Machine) handleNotification(s *State, dst, src int, msg Msg) {
	if s.ZState[dst] != Looking {
		// A settled node answers LOOKING peers with its current view so the
		// newcomer can join the established ensemble (Figure 3's handler).
		if msg.State == Looking {
			s.send(dst, src, Msg{Type: "notif", Round: s.Round[dst], State: s.ZState[dst], Vote: s.Vote[dst]})
		}
		return
	}
	if msg.State == Looking {
		switch {
		case msg.Round > s.Round[dst]:
			s.Round[dst] = msg.Round
			s.Recv[dst] = emptyRecv(m.n)
			if m.Supersedes(msg.Vote, s.Vote[dst]) {
				s.Vote[dst] = msg.Vote
			}
			m.broadcastNotif(s, dst)
		case msg.Round < s.Round[dst]:
			s.send(dst, src, Msg{Type: "notif", Round: s.Round[dst], State: s.ZState[dst], Vote: s.Vote[dst]})
			return
		default:
			if m.Supersedes(msg.Vote, s.Vote[dst]) {
				s.Vote[dst] = msg.Vote
				m.broadcastNotif(s, dst)
			}
		}
		s.Recv[dst][src] = msg.Vote
		s.Recv[dst][dst] = s.Vote[dst]
		m.maybeElect(s, dst)
		return
	}
	// Notification from a settled (LEADING/FOLLOWING) node: join it.
	if msg.Vote.Leader != dst {
		s.Vote[dst] = msg.Vote
		s.Recv[dst][src] = msg.Vote
		m.follow(s, dst, msg.Vote.Leader)
	}
}

func (m *Machine) maybeElect(s *State, i int) {
	count := 0
	for j := 0; j < m.n; j++ {
		if s.Recv[i][j].Leader >= 0 && s.Recv[i][j] == s.Vote[i] {
			count++
		}
	}
	if count < m.quorum() {
		return
	}
	if s.Vote[i].Leader == i {
		m.lead(s, i)
	} else {
		m.follow(s, i, s.Vote[i].Leader)
	}
}

// lead: the elected leader enters the discovery phase: it will establish
// epoch pendEpoch and wait for a quorum of followers to sync.
func (m *Machine) lead(s *State, i int) {
	s.ZState[i] = Leading
	s.LeaderID[i] = i
	he, _ := s.lastZxid(i)
	pend := s.Epoch[i]
	if he > pend {
		pend = he
	}
	s.PendEpoch[i] = pend + 1
	s.Synced[i] = make([]bool, m.n)
	s.Synced[i][i] = true
	s.Acked[i] = make([]int, m.n)
	s.Acked[i][i] = len(s.History[i])
	s.Activated[i] = false
	s.Counter[i] = 0
}

// follow: the node becomes a follower and announces itself to the leader.
func (m *Machine) follow(s *State, i, leader int) {
	s.ZState[i] = Following
	s.LeaderID[i] = leader
	s.Synced[i] = nil
	s.Acked[i] = nil
	s.Activated[i] = false
	e, c := s.lastZxid(i)
	s.send(i, leader, Msg{Type: "finfo", Epoch: s.Epoch[i], Counter: c, NewEpoch: e})
}

func (m *Machine) handleFollowerInfo(s *State, dst, src int, msg Msg) {
	if s.ZState[dst] != Leading {
		return
	}
	// Compressed discovery+sync: answer with the new epoch and the leader's
	// full history (a DIFF/SNAP collapsed to SNAP).
	s.send(dst, src, Msg{Type: "sync", NewEpoch: s.PendEpoch[dst], History: append([]Txn(nil), s.History[dst]...), Committed: s.Commit[dst]})
}

func (m *Machine) handleSync(s *State, dst, src int, msg Msg) {
	if s.ZState[dst] != Following || s.LeaderID[dst] != src {
		return
	}
	// Epoch promise (the discovery-phase guarantee): a follower that has
	// accepted epoch e never helps establish an epoch <= e, which keeps
	// established epochs unique across leaders.
	if msg.NewEpoch <= s.Epoch[dst] {
		return
	}
	s.Epoch[dst] = msg.NewEpoch
	s.History[dst] = append([]Txn(nil), msg.History...)
	if msg.Committed > s.Commit[dst] {
		s.Commit[dst] = msg.Committed
		m.extendCommitted(s, dst)
	}
	e, c := s.lastZxid(dst)
	s.send(dst, src, Msg{Type: "ackld", Epoch: e, Counter: c})
}

func (m *Machine) handleAckLeader(s *State, dst, src int, msg Msg) {
	if s.ZState[dst] != Leading {
		return
	}
	s.Synced[dst][src] = true
	// The follower confirmed everything up to its reported last zxid; the
	// leader streams any proposals issued since the SYNC was cut so the
	// follower's history has no gaps.
	idx := m.historyIndex(s, dst, msg.Epoch, msg.Counter)
	s.Acked[dst][src] = idx
	for k := idx; k < len(s.History[dst]); k++ {
		t := s.History[dst][k]
		s.send(dst, src, Msg{Type: "prop", Epoch: t.Epoch, Counter: t.Counter, Value: t.Value})
	}
	count := 0
	for j := 0; j < m.n; j++ {
		if s.Synced[dst][j] {
			count++
		}
	}
	if count >= m.quorum() && !s.Activated[dst] {
		// Epoch established: the leader activates and adopts the new epoch.
		s.Activated[dst] = true
		s.Epoch[dst] = s.PendEpoch[dst]
	}
	m.advanceCommit(s, dst)
}

// historyIndex maps a zxid to its 1-based position in node i's history
// (0 when the zxid is the empty marker or unknown).
func (m *Machine) historyIndex(s *State, i, epoch, counter int) int {
	for k, t := range s.History[i] {
		if t.Epoch == epoch && t.Counter == counter {
			return k + 1
		}
	}
	return 0
}

func (m *Machine) clientRequest(s *State, i int, v string) {
	s.Counter[i]++
	txn := Txn{Epoch: s.PendEpoch[i], Counter: s.Counter[i], Value: v}
	s.History[i] = append(s.History[i], txn)
	s.Acked[i][i] = len(s.History[i])
	for p := 0; p < m.n; p++ {
		if p == i || !s.Synced[i][p] {
			continue
		}
		s.send(i, p, Msg{Type: "prop", Epoch: txn.Epoch, Counter: txn.Counter, Value: v})
	}
}

func (m *Machine) handleProposal(s *State, dst, src int, msg Msg) {
	if s.ZState[dst] != Following || s.LeaderID[dst] != src {
		return
	}
	e, c := s.lastZxid(dst)
	switch {
	case (msg.Epoch == e && msg.Counter == c+1) || (msg.Epoch > e && msg.Counter == 1):
		// The proposal directly extends the history: append and ack.
		s.History[dst] = append(s.History[dst], Txn{Epoch: msg.Epoch, Counter: msg.Counter, Value: msg.Value})
		s.send(dst, src, Msg{Type: "ack", Epoch: msg.Epoch, Counter: msg.Counter})
	case msg.Epoch < e || (msg.Epoch == e && msg.Counter <= c):
		// Already held (a retransmission after catch-up): ack idempotently.
		s.send(dst, src, Msg{Type: "ack", Epoch: msg.Epoch, Counter: msg.Counter})
	default:
		// A gap (the connection was cut in between): do not append — the
		// follower will re-synchronise through the next election round.
	}
}

func (m *Machine) handleAck(s *State, dst, src int, msg Msg) {
	if s.ZState[dst] != Leading {
		return
	}
	// Map the acked zxid to an index in the leader's history.
	idx := -1
	for k, t := range s.History[dst] {
		if t.Epoch == msg.Epoch && t.Counter == msg.Counter {
			idx = k + 1
			break
		}
	}
	if idx < 0 {
		return
	}
	if idx > s.Acked[dst][src] {
		s.Acked[dst][src] = idx
	}
	m.advanceCommit(s, dst)
}

func (m *Machine) advanceCommit(s *State, i int) {
	if !s.Activated[i] {
		return
	}
	newCommit := s.Commit[i]
	for idx := s.Commit[i] + 1; idx <= len(s.History[i]); idx++ {
		if s.History[i][idx-1].Epoch != s.PendEpoch[i] {
			continue
		}
		count := 0
		for j := 0; j < m.n; j++ {
			if s.Acked[i][j] >= idx {
				count++
			}
		}
		if count >= m.quorum() {
			newCommit = idx
		}
	}
	if newCommit > s.Commit[i] {
		s.Commit[i] = newCommit
		m.extendCommitted(s, i)
		for p := 0; p < m.n; p++ {
			if p == i || !s.Synced[i][p] {
				continue
			}
			s.send(i, p, Msg{Type: "commit", Index: s.Commit[i]})
		}
	}
}

func (m *Machine) handleCommit(s *State, dst, src int, msg Msg) {
	if s.ZState[dst] != Following || s.LeaderID[dst] != src {
		return
	}
	c := msg.Index
	if c > len(s.History[dst]) {
		c = len(s.History[dst])
	}
	if c > s.Commit[dst] {
		s.Commit[dst] = c
		m.extendCommitted(s, dst)
	}
}

func (m *Machine) extendCommitted(s *State, i int) {
	for idx := len(s.Committed) + 1; idx <= s.Commit[i]; idx++ {
		s.Committed = append(s.Committed, s.History[i][idx-1])
	}
}

func (m *Machine) crash(s *State, i int) {
	s.Up[i] = false
	for j := 0; j < m.n; j++ {
		if j == i {
			continue
		}
		s.Chan[i][j] = nil
		s.Chan[j][i] = nil
		s.Cut[i][j] = true
		s.Cut[j][i] = true
	}
	// Volatile state resets (history and epoch are durable).
	s.ZState[i] = Looking
	s.Round[i] = 0
	e, c := s.lastZxid(i)
	s.Vote[i] = Vote{Leader: i, Epoch: e, Counter: c}
	s.Recv[i] = emptyRecv(m.n)
	s.Recv[i][i] = s.Vote[i]
	s.Commit[i] = 0
	s.LeaderID[i] = -1
	s.PendEpoch[i] = 0
	s.Synced[i] = nil
	s.Acked[i] = nil
	s.Activated[i] = false
	s.Counter[i] = 0
}

func (m *Machine) restart(s *State, i int) {
	s.Up[i] = true
	for j := 0; j < m.n; j++ {
		if j == i || !s.Up[j] {
			continue
		}
		if s.Part[i][j] || s.Part[j][i] {
			continue
		}
		s.Cut[i][j] = false
		s.Cut[j][i] = false
	}
}

// Actions lists the specification's action names (Table 1's #Act).
func (m *Machine) Actions() []string {
	return []string{
		"TimeoutElection", "ClientRequest",
		"HandleNotification", "HandleFollowerInfo", "HandleSync",
		"HandleAckLeader", "HandleProposal", "HandleAck", "HandleCommit",
		"NodeCrash", "NodeStart", "NetworkPartition", "NetworkRecover",
	}
}
