package zabkeeper

import (
	"github.com/sandtable-go/sandtable/internal/fp"
	"github.com/sandtable-go/sandtable/internal/spec"
)

// Incremental orbit canonicalization (spec.OrbitHasher), mirroring
// raftbase/orbit.go: the state is decomposed once into node-id-free
// sub-digests (per node, per ordered pair, global), and each permutation's
// fingerprint is derived by recombining the digests in permuted slot order
// plus a node-id residue read straight from the state. Zab is heavier on
// ids than Raft — votes carry their proposed leader — so the residue
// covers Vote[i].Leader, LeaderID[i], every Recv[i][j].Leader, and the
// Vote.Leader of every in-flight notification message; everything else in
// those structures (epochs, counters, histories) is id-free and hashed
// once. The contract orbitCombine(perm) == Permute(s, perm).Fingerprint()
// holds by construction; zabkeeper_test.go property-tests it against the
// materialising reference.

// orbitMaxNodes bounds the stack-allocated digest buffers used by
// Fingerprint and PermutedFingerprint (heap fallback above it).
const orbitMaxNodes = 8

// hashIDFree mixes every Msg field except Vote.Leader (the one node id a
// message can carry; it lives in the combine residue).
func (m *Msg) hashIDFree(h *fp.Hasher) {
	h.WriteString(m.Type)
	h.WriteInt(m.Round)
	h.WriteInt(m.State)
	h.WriteInt(m.Vote.Epoch)
	h.WriteInt(m.Vote.Counter)
	h.WriteInt(m.Epoch)
	h.WriteInt(m.Counter)
	h.WriteInt(m.NewEpoch)
	h.WriteInt(len(m.History))
	for _, t := range m.History {
		h.WriteInt(t.Epoch)
		h.WriteInt(t.Counter)
		h.WriteString(t.Value)
	}
	h.WriteInt(m.Committed)
	h.WriteString(m.Value)
	h.WriteInt(m.Index)
}

// orbitDigests fills node (len n) and edge (len n*n, row-major) with the
// state's id-free sub-digests and returns the global digest.
func (s *State) orbitDigests(node, edge []uint64) uint64 {
	n := s.n
	var h fp.Hasher
	for i := 0; i < n; i++ {
		h.Reset()
		h.WriteInt(s.ZState[i])
		h.WriteInt(s.Round[i])
		h.WriteInt(s.Vote[i].Epoch)
		h.WriteInt(s.Vote[i].Counter)
		h.WriteInt(s.Epoch[i])
		h.Sep()
		h.WriteInt(len(s.History[i]))
		for _, t := range s.History[i] {
			h.WriteInt(t.Epoch)
			h.WriteInt(t.Counter)
			h.WriteString(t.Value)
		}
		h.WriteInt(s.Commit[i])
		h.WriteInt(s.PendEpoch[i])
		// Row shapes of the nil-able leader matrices (cells live in the
		// edge digests).
		h.WriteInt(len(s.Synced[i]))
		h.WriteInt(len(s.Acked[i]))
		h.WriteBool(s.Activated[i])
		h.WriteInt(s.Counter[i])
		h.WriteBool(s.Up[i])
		node[i] = h.Sum()
	}
	for a := 0; a < n; a++ {
		recv := s.Recv[a]
		synced, acked := s.Synced[a], s.Acked[a]
		for b := 0; b < n; b++ {
			h.Reset()
			h.WriteInt(recv[b].Epoch)
			h.WriteInt(recv[b].Counter)
			if len(synced) > 0 {
				h.WriteBool(synced[b])
			}
			if len(acked) > 0 {
				h.WriteInt(acked[b])
			}
			if a != b {
				q := s.Chan[a][b]
				h.WriteInt(len(q))
				for k := range q {
					q[k].hashIDFree(&h)
				}
				h.WriteBool(s.Cut[a][b])
				h.WriteBool(s.Part[a][b])
			}
			edge[a*n+b] = h.Sum()
		}
	}
	h.Reset()
	h.WriteInt(len(s.Committed))
	for _, t := range s.Committed {
		h.WriteInt(t.Epoch)
		h.WriteInt(t.Counter)
		h.WriteString(t.Value)
	}
	s.Counters.Hash(&h)
	s.Viol.Hash(&h)
	return h.Sum()
}

// orbitCombine folds the sub-digests into the fingerprint of the state
// permuted by perm (inv is perm's inverse). Under the identity permutation
// this IS State.Fingerprint.
func (s *State) orbitCombine(node, edge []uint64, global uint64, perm, inv []int) uint64 {
	n := s.n
	var h fp.Hasher
	h.Reset()
	for j := 0; j < n; j++ {
		h.WriteDigest(node[inv[j]])
	}
	for a := 0; a < n; a++ {
		row := edge[inv[a]*n:]
		for b := 0; b < n; b++ {
			h.WriteDigest(row[inv[b]])
		}
	}
	// Node-id residue, written in permuted slot order with every id mapped
	// through perm (-1 absence markers pass through unmapped, matching
	// permute's mapID). Queue lengths and row shapes are already pinned by
	// the edge/node digests, so the residue needs no framing of its own.
	h.Sep()
	mapID := func(id int) int {
		if id < 0 {
			return id
		}
		return perm[id]
	}
	for j := 0; j < n; j++ {
		i := inv[j]
		h.WriteInt(mapID(s.Vote[i].Leader))
		h.WriteInt(mapID(s.LeaderID[i]))
	}
	for a := 0; a < n; a++ {
		recv := s.Recv[inv[a]]
		for b := 0; b < n; b++ {
			h.WriteInt(mapID(recv[inv[b]].Leader))
		}
	}
	for a := 0; a < n; a++ {
		row := s.Chan[inv[a]]
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			q := row[inv[b]]
			for k := range q {
				h.WriteInt(mapID(q[k].Vote.Leader))
			}
		}
	}
	h.WriteDigest(global)
	return h.Sum()
}

// orbitBuffers returns digest buffers for an n-node state: views of the
// caller's stack arrays when the arity fits, heap slices otherwise.
func orbitBuffers(n int, nodeBuf *[orbitMaxNodes]uint64, edgeBuf *[orbitMaxNodes * orbitMaxNodes]uint64) (node, edge []uint64) {
	if n <= orbitMaxNodes {
		return nodeBuf[:n], edgeBuf[:n*n]
	}
	return make([]uint64, n), make([]uint64, n*n)
}

// OrbitFingerprint implements spec.OrbitHasher: the minimum fingerprint
// over all node permutations (and whether a non-identity permutation
// produced it), from one digest pass plus cheap per-permutation combines.
func (m *Machine) OrbitFingerprint(st spec.State, perms *spec.PermTable, scratch *fp.OrbitScratch) (uint64, bool) {
	s := st.(*State)
	scratch.Reset(s.n)
	g := s.orbitDigests(scratch.Node, scratch.Edge)
	plain := s.orbitCombine(scratch.Node, scratch.Edge, g, perms.Identity, perms.Identity)
	min := plain
	for k, p := range perms.NonIdentity {
		if f := s.orbitCombine(scratch.Node, scratch.Edge, g, p, perms.NonIdentityInv[k]); f < min {
			min = f
		}
	}
	return min, min != plain
}
