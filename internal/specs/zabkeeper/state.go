// Package zabkeeper is the formal specification of the zabkeeper system
// (the ZooKeeper analogue): fast leader election (FLE) with vote
// notifications, a compressed discovery/synchronisation phase, and the Zab
// broadcast phase (propose / ack / commit), over TCP semantics.
//
// Mirroring the paper's adaptation of the official ZooKeeper system spec
// (§4.2), the specification compresses multi-threaded queue hand-offs into
// atomic actions and replaces the message channels with the shared network
// module semantics. The discovery and synchronisation phases are folded
// into one FOLLOWERINFO → SYNC → ACK-NEWLEADER exchange carrying the full
// leader history (a DIFF/SNAP collapsed to SNAP, documented in DESIGN.md).
//
// The ZabKeeper#1 defect (ZOOKEEPER-1419 analogue, "votes are not total
// ordered") is a broken vote comparator that loses antisymmetry when vote
// zxids cross epochs; the VoteTotalOrder invariant detects it.
package zabkeeper

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/sandtable-go/sandtable/internal/spec"
)

// Server states.
const (
	Looking = iota
	Following
	Leading
)

func stateString(s int) string {
	switch s {
	case Leading:
		return "leading"
	case Following:
		return "following"
	default:
		return "looking"
	}
}

// Txn is one replicated transaction; its zxid is (Epoch, Counter).
type Txn struct {
	Epoch   int
	Counter int
	Value   string
}

// Vote is an FLE vote: the proposed leader and that leader's last zxid.
type Vote struct {
	Leader  int
	Epoch   int
	Counter int
}

func (v Vote) String() string {
	return fmt.Sprintf("%d@(%d,%d)", v.Leader, v.Epoch, v.Counter)
}

// Msg is the specification-level message.
type Msg struct {
	Type string // "notif", "finfo", "sync", "ackld", "prop", "ack", "commit"
	// notif
	Round int
	State int
	Vote  Vote
	// finfo / ackld
	Epoch   int
	Counter int
	// sync
	NewEpoch  int
	History   []Txn
	Committed int
	// prop
	Value string
	// commit
	Index int
}

// State is the zabkeeper specification state.
type State struct {
	n int

	ZState  []int
	Round   []int
	Vote    []Vote
	Recv    [][]Vote // received votes this round; Leader == -1 marks absent
	Epoch   []int    // current (accepted) epoch, durable
	History [][]Txn  // durable
	Commit  []int    // volatile committed prefix length

	LeaderID  []int
	PendEpoch []int // leader: epoch being established
	Synced    [][]bool
	Acked     [][]int
	Activated []bool
	Counter   []int // leader: next proposal counter

	Up []bool

	Chan [][][]Msg
	Cut  [][]bool
	Part [][]bool

	// Ghost committed transaction sequence (cluster-wide prefix).
	Committed []Txn

	Counters spec.Counters
	Viol     spec.Violation
}

func newState(n int) *State {
	s := &State{n: n}
	s.ZState = make([]int, n)
	s.Round = make([]int, n)
	s.Vote = make([]Vote, n)
	s.Recv = make([][]Vote, n)
	s.Epoch = make([]int, n)
	s.History = make([][]Txn, n)
	s.Commit = make([]int, n)
	s.LeaderID = make([]int, n)
	s.PendEpoch = make([]int, n)
	s.Synced = make([][]bool, n)
	s.Acked = make([][]int, n)
	s.Activated = make([]bool, n)
	s.Counter = make([]int, n)
	s.Up = make([]bool, n)
	s.Chan = make([][][]Msg, n)
	s.Cut = make([][]bool, n)
	s.Part = make([][]bool, n)
	for i := 0; i < n; i++ {
		s.Vote[i] = Vote{Leader: i}
		s.Recv[i] = emptyRecv(n)
		s.Recv[i][i] = s.Vote[i]
		s.LeaderID[i] = -1
		s.Up[i] = true
		s.Chan[i] = make([][]Msg, n)
		s.Cut[i] = make([]bool, n)
		s.Part[i] = make([]bool, n)
	}
	return s
}

func emptyRecv(n int) []Vote {
	r := make([]Vote, n)
	for i := range r {
		r[i] = Vote{Leader: -1}
	}
	return r
}

// clone deep-copies the state with the same flat-backing allocation
// discipline as raftbase: related slices are carved from a few shared
// backing arrays with exact-capacity subslices, so the per-successor clone
// — the explorer's dominant allocation source — costs a handful of
// allocations instead of one per slice. Every subslice has cap == len, so
// later appends (History, Chan queues, Committed) reallocate rather than
// growing into a neighbour's region; in-place row writes stay within their
// own disjoint region.
func (s *State) clone() *State {
	n := s.n
	c := &State{n: n}

	// Fixed-size per-node int slices: one backing array, seven views.
	ints := make([]int, 7*n)
	c.ZState = ints[0*n : 1*n : 1*n]
	c.Round = ints[1*n : 2*n : 2*n]
	c.Epoch = ints[2*n : 3*n : 3*n]
	c.Commit = ints[3*n : 4*n : 4*n]
	c.LeaderID = ints[4*n : 5*n : 5*n]
	c.PendEpoch = ints[5*n : 6*n : 6*n]
	c.Counter = ints[6*n : 7*n : 7*n]
	copy(c.ZState, s.ZState)
	copy(c.Round, s.Round)
	copy(c.Epoch, s.Epoch)
	copy(c.Commit, s.Commit)
	copy(c.LeaderID, s.LeaderID)
	copy(c.PendEpoch, s.PendEpoch)
	copy(c.Counter, s.Counter)

	// Up/Activated plus the Cut/Part matrices: one flat bool array; Cut,
	// Part, and Synced share one outer row array.
	bools := make([]bool, 2*n+2*n*n)
	c.Up = bools[0:n:n]
	c.Activated = bools[n : 2*n : 2*n]
	copy(c.Up, s.Up)
	copy(c.Activated, s.Activated)
	boolRows := make([][]bool, 3*n)
	c.Cut = boolRows[0:n:n]
	c.Part = boolRows[n : 2*n : 2*n]
	c.Synced = boolRows[2*n : 3*n : 3*n]
	off := 2 * n
	for i := 0; i < n; i++ {
		c.Cut[i] = bools[off : off+n : off+n]
		copy(c.Cut[i], s.Cut[i])
		off += n
	}
	for i := 0; i < n; i++ {
		c.Part[i] = bools[off : off+n : off+n]
		copy(c.Part[i], s.Part[i])
		off += n
	}
	nsy := 0
	for i := 0; i < n; i++ {
		nsy += len(s.Synced[i])
	}
	var sflat []bool
	if nsy > 0 {
		sflat = make([]bool, 0, nsy)
	}
	for i := 0; i < n; i++ {
		if row := s.Synced[i]; row != nil {
			start := len(sflat)
			sflat = append(sflat, row...)
			c.Synced[i] = sflat[start:len(sflat):len(sflat)]
		}
	}

	// Acked: nil-able leader rows carved from one counted flat array.
	c.Acked = make([][]int, n)
	na := 0
	for i := 0; i < n; i++ {
		na += len(s.Acked[i])
	}
	var aflat []int
	if na > 0 {
		aflat = make([]int, 0, na)
	}
	for i := 0; i < n; i++ {
		if row := s.Acked[i]; row != nil {
			start := len(aflat)
			aflat = append(aflat, row...)
			c.Acked[i] = aflat[start:len(aflat):len(aflat)]
		}
	}

	// Vote and the always-square Recv matrix: one flat Vote array.
	vflat := make([]Vote, n+n*n)
	c.Vote = vflat[0:n:n]
	copy(c.Vote, s.Vote)
	c.Recv = make([][]Vote, n)
	voff := n
	for i := 0; i < n; i++ {
		c.Recv[i] = vflat[voff : voff+n : voff+n]
		copy(c.Recv[i], s.Recv[i])
		voff += n
	}

	// History and the ghost Committed sequence: one counted flat Txn array.
	c.History = make([][]Txn, n)
	nt := len(s.Committed)
	for i := 0; i < n; i++ {
		nt += len(s.History[i])
	}
	var tflat []Txn
	if nt > 0 {
		tflat = make([]Txn, 0, nt)
	}
	cloneTxns := func(ts []Txn) []Txn {
		if len(ts) == 0 {
			return nil
		}
		start := len(tflat)
		tflat = append(tflat, ts...)
		return tflat[start:len(tflat):len(tflat)]
	}
	for i := 0; i < n; i++ {
		c.History[i] = cloneTxns(s.History[i])
	}
	c.Committed = cloneTxns(s.Committed)

	// Channels: shared outer, flat row array, one flat message array.
	c.Chan = make([][][]Msg, n)
	chanRows := make([][]Msg, n*n)
	nm := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			nm += len(s.Chan[i][j])
		}
	}
	var mflat []Msg
	if nm > 0 {
		mflat = make([]Msg, 0, nm)
	}
	for i := 0; i < n; i++ {
		c.Chan[i] = chanRows[i*n : (i+1)*n : (i+1)*n]
		for j := 0; j < n; j++ {
			if q := s.Chan[i][j]; len(q) > 0 {
				start := len(mflat)
				mflat = append(mflat, q...)
				c.Chan[i][j] = mflat[start:len(mflat):len(mflat)]
			}
		}
	}

	c.Counters = s.Counters
	c.Viol = s.Viol
	return c
}

// Fingerprint implements spec.State: the identity-permutation combine of
// the orbit sub-digest decomposition (see orbit.go), so the flat hash, the
// permuted hash, and the incremental min-of-orbit share one layout by
// construction.
func (s *State) Fingerprint() uint64 {
	var nodeBuf [orbitMaxNodes]uint64
	var edgeBuf [orbitMaxNodes * orbitMaxNodes]uint64
	node, edge := orbitBuffers(s.n, &nodeBuf, &edgeBuf)
	g := s.orbitDigests(node, edge)
	id := spec.PermTableFor(s.n).Identity
	return s.orbitCombine(node, edge, g, id, id)
}

// lastZxid returns node i's last logged zxid.
func (s *State) lastZxid(i int) (epoch, counter int) {
	if len(s.History[i]) == 0 {
		return 0, 0
	}
	t := s.History[i][len(s.History[i])-1]
	return t.Epoch, t.Counter
}

// Vars implements spec.State; rendering matches the implementation's
// Observe output.
func (s *State) Vars() map[string]string {
	m := make(map[string]string, 10*s.n)
	for i := 0; i < s.n; i++ {
		if !s.Up[i] {
			m[fmt.Sprintf("status[%d]", i)] = "crashed"
			continue
		}
		m[fmt.Sprintf("status[%d]", i)] = "up"
		m[fmt.Sprintf("state[%d]", i)] = stateString(s.ZState[i])
		m[fmt.Sprintf("round[%d]", i)] = strconv.Itoa(s.Round[i])
		m[fmt.Sprintf("vote[%d]", i)] = s.Vote[i].String()
		m[fmt.Sprintf("epoch[%d]", i)] = strconv.Itoa(s.Epoch[i])
		m[fmt.Sprintf("history[%d]", i)] = formatHistory(s.History[i])
		m[fmt.Sprintf("committed[%d]", i)] = strconv.Itoa(s.Commit[i])
		m[fmt.Sprintf("leader[%d]", i)] = strconv.Itoa(s.LeaderID[i])
		if s.ZState[i] == Leading {
			m[fmt.Sprintf("synced[%d]", i)] = formatBoolSet(s.Synced[i])
			m[fmt.Sprintf("acked[%d]", i)] = formatInts(s.Acked[i], i)
		} else {
			m[fmt.Sprintf("synced[%d]", i)] = "-"
			m[fmt.Sprintf("acked[%d]", i)] = "-"
		}
	}
	for src := 0; src < s.n; src++ {
		for dst := 0; dst < s.n; dst++ {
			if src == dst {
				continue
			}
			m[fmt.Sprintf("net[%d->%d]", src, dst)] = strconv.Itoa(len(s.Chan[src][dst]))
		}
	}
	s.Counters.Vars(m)
	m["violation"] = s.Viol.Flag
	return m
}

func formatHistory(h []Txn) string {
	if len(h) == 0 {
		return "[]"
	}
	parts := make([]string, len(h))
	for i, t := range h {
		parts[i] = fmt.Sprintf("%d.%d:%s", t.Epoch, t.Counter, t.Value)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func formatBoolSet(b []bool) string {
	var parts []string
	for i, v := range b {
		if v {
			parts = append(parts, strconv.Itoa(i))
		}
	}
	return "{" + strings.Join(parts, " ") + "}"
}

func formatInts(vals []int, self int) string {
	parts := make([]string, 0, len(vals))
	for i, v := range vals {
		if i == self {
			parts = append(parts, "_")
			continue
		}
		parts = append(parts, strconv.Itoa(v))
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// permute returns the node-permuted state (symmetry reduction).
func (s *State) permute(perm []int) *State {
	c := newState(s.n)
	mapID := func(id int) int {
		if id < 0 {
			return id
		}
		return perm[id]
	}
	mapVote := func(v Vote) Vote {
		v.Leader = mapID(v.Leader)
		return v
	}
	for i := 0; i < s.n; i++ {
		pi := perm[i]
		c.ZState[pi] = s.ZState[i]
		c.Round[pi] = s.Round[i]
		c.Vote[pi] = mapVote(s.Vote[i])
		for j := 0; j < s.n; j++ {
			c.Recv[pi][perm[j]] = mapVote(s.Recv[i][j])
		}
		c.Epoch[pi] = s.Epoch[i]
		c.History[pi] = append([]Txn(nil), s.History[i]...)
		c.Commit[pi] = s.Commit[i]
		c.LeaderID[pi] = mapID(s.LeaderID[i])
		c.PendEpoch[pi] = s.PendEpoch[i]
		if s.Synced[i] != nil {
			c.Synced[pi] = make([]bool, s.n)
			for j := 0; j < s.n; j++ {
				c.Synced[pi][perm[j]] = s.Synced[i][j]
			}
		} else {
			c.Synced[pi] = nil
		}
		if s.Acked[i] != nil {
			c.Acked[pi] = make([]int, s.n)
			for j := 0; j < s.n; j++ {
				c.Acked[pi][perm[j]] = s.Acked[i][j]
			}
		} else {
			c.Acked[pi] = nil
		}
		c.Activated[pi] = s.Activated[i]
		c.Counter[pi] = s.Counter[i]
		c.Up[pi] = s.Up[i]
		for j := 0; j < s.n; j++ {
			if i == j {
				continue
			}
			c.Chan[pi][perm[j]] = permuteMsgs(s.Chan[i][j], perm)
			c.Cut[pi][perm[j]] = s.Cut[i][j]
			c.Part[pi][perm[j]] = s.Part[i][j]
		}
	}
	c.Committed = append([]Txn(nil), s.Committed...)
	c.Counters = s.Counters
	c.Viol = s.Viol
	return c
}

func permuteMsgs(msgs []Msg, perm []int) []Msg {
	out := append([]Msg(nil), msgs...)
	for k := range out {
		if out[k].Vote.Leader >= 0 {
			out[k].Vote.Leader = perm[out[k].Vote.Leader]
		}
	}
	return out
}
