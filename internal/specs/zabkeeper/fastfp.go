package zabkeeper

import (
	"github.com/sandtable-go/sandtable/internal/fp"
	"github.com/sandtable-go/sandtable/internal/spec"
)

// PermutedFingerprint implements spec.FastSymmetric: it computes
// Permute(s, perm).Fingerprint() without materialising the permuted state.
// The write sequence mirrors State.Fingerprint exactly, reading through the
// inverse permutation; zabkeeper_test.go property-tests the equivalence
// against the reference permute implementation.
func (m *Machine) PermutedFingerprint(st spec.State, perm []int) uint64 {
	s := st.(*State)
	n := s.n
	var invBuf [8]int
	inv := invBuf[:n]
	for i, p := range perm {
		inv[p] = i
	}
	mapID := func(id int) int {
		if id < 0 {
			return id
		}
		return perm[id]
	}

	h := fp.New()
	h.WriteInt(n)
	for j := 0; j < n; j++ {
		h.WriteInt(s.ZState[inv[j]])
	}
	h.WriteInt(n)
	for j := 0; j < n; j++ {
		h.WriteInt(s.Round[inv[j]])
	}
	for j := 0; j < n; j++ {
		v := s.Vote[inv[j]]
		h.WriteInt(mapID(v.Leader))
		h.WriteInt(v.Epoch)
		h.WriteInt(v.Counter)
	}
	for j := 0; j < n; j++ {
		h.Sep()
		row := s.Recv[inv[j]]
		for k := 0; k < n; k++ {
			v := row[inv[k]]
			h.WriteInt(mapID(v.Leader))
			h.WriteInt(v.Epoch)
			h.WriteInt(v.Counter)
		}
	}
	h.WriteInt(n)
	for j := 0; j < n; j++ {
		h.WriteInt(s.Epoch[inv[j]])
	}
	for j := 0; j < n; j++ {
		h.Sep()
		hist := s.History[inv[j]]
		h.WriteInt(len(hist))
		for _, t := range hist {
			h.WriteInt(t.Epoch)
			h.WriteInt(t.Counter)
			h.WriteString(t.Value)
		}
	}
	h.WriteInt(n)
	for j := 0; j < n; j++ {
		h.WriteInt(s.Commit[inv[j]])
	}
	h.WriteInt(n)
	for j := 0; j < n; j++ {
		h.WriteInt(mapID(s.LeaderID[inv[j]]))
	}
	h.WriteInt(n)
	for j := 0; j < n; j++ {
		h.WriteInt(s.PendEpoch[inv[j]])
	}
	for j := 0; j < n; j++ {
		h.Sep()
		synced := s.Synced[inv[j]]
		h.WriteInt(len(synced))
		if synced != nil {
			for k := 0; k < n; k++ {
				h.WriteBool(synced[inv[k]])
			}
		}
		acked := s.Acked[inv[j]]
		h.WriteInt(len(acked))
		if acked != nil {
			for k := 0; k < n; k++ {
				h.WriteInt(acked[inv[k]])
			}
		}
	}
	h.Sep()
	for j := 0; j < n; j++ {
		h.WriteBool(s.Activated[inv[j]])
	}
	h.WriteInt(n)
	for j := 0; j < n; j++ {
		h.WriteInt(s.Counter[inv[j]])
	}
	h.Sep()
	for j := 0; j < n; j++ {
		h.WriteBool(s.Up[inv[j]])
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			h.Sep()
			if a == b {
				h.WriteInt(0)
				h.WriteBool(false)
				h.WriteBool(false)
				continue
			}
			q := s.Chan[inv[a]][inv[b]]
			h.WriteInt(len(q))
			for k := range q {
				msg := q[k]
				if msg.Vote.Leader >= 0 {
					msg.Vote.Leader = perm[msg.Vote.Leader]
				}
				msg.hash(h)
			}
			h.WriteBool(s.Cut[inv[a]][inv[b]])
			h.WriteBool(s.Part[inv[a]][inv[b]])
		}
	}
	h.Sep()
	h.WriteInt(len(s.Committed))
	for _, t := range s.Committed {
		h.WriteInt(t.Epoch)
		h.WriteInt(t.Counter)
		h.WriteString(t.Value)
	}
	s.Counters.Hash(h)
	s.Viol.Hash(h)
	return h.Sum()
}
