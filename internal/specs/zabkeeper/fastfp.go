package zabkeeper

import (
	"github.com/sandtable-go/sandtable/internal/spec"
)

// PermutedFingerprint implements spec.FastSymmetric: it computes
// Permute(s, perm).Fingerprint() without materialising the permuted state,
// by running one orbit digest pass (orbit.go) and one combine under perm.
// zabkeeper_test.go property-tests the equivalence against the reference
// permute implementation.
func (m *Machine) PermutedFingerprint(st spec.State, perm []int) uint64 {
	s := st.(*State)
	n := s.n
	var nodeBuf [orbitMaxNodes]uint64
	var edgeBuf [orbitMaxNodes * orbitMaxNodes]uint64
	node, edge := orbitBuffers(n, &nodeBuf, &edgeBuf)
	var invBuf [orbitMaxNodes]int
	inv := invBuf[:]
	if n > orbitMaxNodes {
		inv = make([]int, n)
	} else {
		inv = invBuf[:n]
	}
	for i, p := range perm {
		inv[p] = i
	}
	g := s.orbitDigests(node, edge)
	return s.orbitCombine(node, edge, g, perm, inv)
}
