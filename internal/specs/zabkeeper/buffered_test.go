package zabkeeper_test

import (
	"testing"

	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/spec/spectest"
	"github.com/sandtable-go/sandtable/internal/specs/zabkeeper"
)

// TestAppendNextMatchesNext property-tests the spec.BufferedMachine contract
// on the zabkeeper specification, in both the fixed and the buggy
// (ZabVoteOrder) builds so the flagged-state early return is covered too.
func TestAppendNextMatchesNext(t *testing.T) {
	b := spec.Budget{
		Name: "buffered", MaxTimeouts: 4, MaxCrashes: 1, MaxRestarts: 1,
		MaxRequests: 2, MaxPartitions: 1, MaxBuffer: 3,
	}
	for name, bugs := range map[string]bugdb.Set{
		"fixed": bugdb.NoBugs(),
		"buggy": bugdb.AllBugs("zabkeeper"),
	} {
		t.Run(name, func(t *testing.T) {
			m := zabkeeper.New(spec.Config{Name: "n3w2", Nodes: 3, Workload: []string{"v1", "v2"}}, b, bugs)
			spectest.AssertBufferedEquiv(t, m, 25, 30, 11)
		})
	}
}
