// Package craft is the formal specification of the craft system (the WRaft
// analogue): UDP semantics with message loss/duplication/reordering, log
// compaction with snapshot transfer, and retry-on-reject replication.
package craft

import (
	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/specs/raftbase"
	"github.com/sandtable-go/sandtable/internal/vnet"
)

// New builds the craft specification machine.
func New(cfg spec.Config, b spec.Budget, bugs bugdb.Set) *raftbase.Machine {
	return raftbase.New(raftbase.Options{
		System:    "craft",
		Profile:   raftbase.CRaft,
		Transport: vnet.UDP,
		Snapshots: true,
		Bugs:      bugs,
		Config:    cfg,
		Budget:    b,
	})
}
