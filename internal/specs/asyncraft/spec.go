// Package asyncraft is the formal specification of the asyncraft system
// (the RaftOS analogue): an asyncio-style Raft over UDP semantics.
package asyncraft

import (
	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/specs/raftbase"
	"github.com/sandtable-go/sandtable/internal/vnet"
)

// New builds the asyncraft specification machine.
func New(cfg spec.Config, b spec.Budget, bugs bugdb.Set) *raftbase.Machine {
	return raftbase.New(raftbase.Options{
		System:    "asyncraft",
		Profile:   raftbase.AsyncRaft,
		Transport: vnet.UDP,
		Bugs:      bugs,
		Config:    cfg,
		Budget:    b,
	})
}
