// Package gosyncobj is the formal specification of the gosyncobj system
// (the PySyncObj analogue): TCP semantics, aggressive next-index advance,
// and follower next-index hints. It instantiates the raftbase engine with
// the GoSyncObj profile.
package gosyncobj

import (
	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/specs/raftbase"
	"github.com/sandtable-go/sandtable/internal/vnet"
)

// New builds the gosyncobj specification machine.
func New(cfg spec.Config, b spec.Budget, bugs bugdb.Set) *raftbase.Machine {
	return raftbase.New(raftbase.Options{
		System:    "gosyncobj",
		Profile:   raftbase.GoSyncObj,
		Transport: vnet.TCP,
		Bugs:      bugs,
		Config:    cfg,
		Budget:    b,
	})
}
