// Package xraft is the formal specification of the xraft system: a
// conventional Raft with the PreVote extension over TCP semantics.
package xraft

import (
	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/specs/raftbase"
	"github.com/sandtable-go/sandtable/internal/vnet"
)

// New builds the xraft specification machine.
func New(cfg spec.Config, b spec.Budget, bugs bugdb.Set) *raftbase.Machine {
	return raftbase.New(raftbase.Options{
		System:    "xraft",
		Profile:   raftbase.Xraft,
		Transport: vnet.TCP,
		PreVote:   true,
		Bugs:      bugs,
		Config:    cfg,
		Budget:    b,
	})
}
