// Package daosraft is the formal specification of the daosraft system: the
// craft core adopted by a storage stack, with the PreVote extension (and
// its DaosRaft#1 defect) over TCP semantics.
package daosraft

import (
	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/specs/raftbase"
	"github.com/sandtable-go/sandtable/internal/vnet"
)

// New builds the daosraft specification machine.
func New(cfg spec.Config, b spec.Budget, bugs bugdb.Set) *raftbase.Machine {
	return raftbase.New(raftbase.Options{
		System:    "daosraft",
		Profile:   raftbase.CRaft,
		Transport: vnet.TCP,
		Snapshots: true,
		PreVote:   true,
		Bugs:      bugs,
		Config:    cfg,
		Budget:    b,
	})
}
