// Package xraftkv is the formal specification of the xraftkv system: the
// key-value store built on the xraft core (without PreVote), adding Put/Get
// client operations and the linearizability property.
package xraftkv

import (
	"github.com/sandtable-go/sandtable/internal/bugdb"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/specs/raftbase"
	"github.com/sandtable-go/sandtable/internal/vnet"
)

// New builds the xraftkv specification machine.
func New(cfg spec.Config, b spec.Budget, bugs bugdb.Set) *raftbase.Machine {
	return raftbase.New(raftbase.Options{
		System:    "xraftkv",
		Profile:   raftbase.Xraft,
		Transport: vnet.TCP,
		KV:        true,
		Bugs:      bugs,
		Config:    cfg,
		Budget:    b,
	})
}
