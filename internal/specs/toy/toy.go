// Package toy provides small, exactly-analysable specifications used to test
// the explorer and to demo the workflow in examples/quickstart.
//
// LostUpdate models the classic read-modify-write race: n processes each
// increment a shared counter non-atomically (read into a local register,
// then write register+1 back). The safety property — when every process has
// finished, the counter equals n — is violated whenever two reads interleave
// before the corresponding writes. The model is fully symmetric in the
// processes, has a small exactly-countable state space, and a minimal
// counterexample of depth 4, which makes it ideal for asserting explorer
// behaviour precisely.
package toy

import (
	"encoding/binary"
	"fmt"

	"github.com/sandtable-go/sandtable/internal/fp"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/trace"
)

// pc values for each process.
const (
	pcIdle = iota // has not read yet
	pcRead        // holds the old counter value in its register
	pcDone        // has written back
)

// LostUpdateState is the toy machine's state.
type LostUpdateState struct {
	Mem   int
	Local []int
	PC    []int
}

// Fingerprint implements spec.State: the identity-permutation combine of
// the orbit decomposition (see orbitDigests), so the flat hash and the
// incremental min-of-orbit share one layout by construction.
func (s *LostUpdateState) Fingerprint() uint64 {
	var nodeBuf [orbitMaxNodes]uint64
	node := orbitNodeBuffer(len(s.PC), &nodeBuf)
	s.orbitDigests(node)
	id := spec.PermTableFor(len(s.PC)).Identity
	return s.orbitCombine(node, id)
}

// orbitMaxNodes bounds the stack-allocated digest buffer used by
// Fingerprint (heap fallback above it).
const orbitMaxNodes = 8

func orbitNodeBuffer(n int, buf *[orbitMaxNodes]uint64) []uint64 {
	if n <= orbitMaxNodes {
		return buf[:n]
	}
	return make([]uint64, n)
}

// orbitDigests hashes each process's local component (register, pc) into
// node — the model has no per-pair state and no node-id-valued fields, so
// the decomposition is nodes plus the shared counter.
func (s *LostUpdateState) orbitDigests(node []uint64) {
	var h fp.Hasher
	for i := range node {
		h.Reset()
		h.WriteInt(s.Local[i])
		h.WriteInt(s.PC[i])
		node[i] = h.Sum()
	}
}

// orbitCombine folds the node digests in permuted slot order (inv[j] = the
// original process in slot j) plus the shared counter. Under the identity
// this IS Fingerprint.
func (s *LostUpdateState) orbitCombine(node []uint64, inv []int) uint64 {
	var h fp.Hasher
	h.Reset()
	for j := range node {
		h.WriteDigest(node[inv[j]])
	}
	h.WriteInt(s.Mem)
	return h.Sum()
}

// Vars implements spec.State.
func (s *LostUpdateState) Vars() map[string]string {
	m := map[string]string{"mem": fmt.Sprint(s.Mem)}
	for i := range s.PC {
		m[fmt.Sprintf("pc[%d]", i)] = fmt.Sprint(s.PC[i])
		m[fmt.Sprintf("local[%d]", i)] = fmt.Sprint(s.Local[i])
	}
	return m
}

func (s *LostUpdateState) clone() *LostUpdateState {
	// Local and PC share one backing array (exact-cap subslices): two copies,
	// one allocation. Neither slice is ever appended to, so the shared
	// backing can never alias across fields.
	n := len(s.PC)
	ints := make([]int, 2*n)
	c := &LostUpdateState{Mem: s.Mem, Local: ints[0:n:n], PC: ints[n : 2*n : 2*n]}
	copy(c.Local, s.Local)
	copy(c.PC, s.PC)
	return c
}

// LostUpdate is the machine. Atomic=true fixes the race (read and write
// become one action), which makes the model a useful fix-validation demo.
type LostUpdate struct {
	N      int
	Atomic bool
}

// Name implements spec.Machine.
func (m *LostUpdate) Name() string { return "toy-lostupdate" }

// Init implements spec.Machine.
func (m *LostUpdate) Init() []spec.State {
	return []spec.State{&LostUpdateState{Local: make([]int, m.N), PC: make([]int, m.N)}}
}

// Next implements spec.Machine.
func (m *LostUpdate) Next(st spec.State) []spec.Succ {
	return m.AppendNext(st, nil)
}

// AppendNext implements spec.BufferedMachine (successors appended to a
// caller-owned scratch buffer; see spec.BufferedMachine).
func (m *LostUpdate) AppendNext(st spec.State, buf []spec.Succ) []spec.Succ {
	s := st.(*LostUpdateState)
	out := buf
	for i := 0; i < m.N; i++ {
		switch s.PC[i] {
		case pcIdle:
			n := s.clone()
			if m.Atomic {
				n.Mem++
				n.PC[i] = pcDone
				out = append(out, succ("IncAtomic", i, n))
			} else {
				n.Local[i] = s.Mem
				n.PC[i] = pcRead
				out = append(out, succ("Read", i, n))
			}
		case pcRead:
			n := s.clone()
			n.Mem = s.Local[i] + 1
			n.Local[i] = 0 // register is dead after the write; normalise it
			n.PC[i] = pcDone
			out = append(out, succ("Write", i, n))
		}
	}
	return out
}

func succ(action string, node int, s spec.State) spec.Succ {
	return spec.Succ{
		Event: trace.Event{Type: trace.EvInternal, Action: action, Node: node},
		State: s,
	}
}

// Actions implements spec.ActionLister: the declared action vocabulary,
// conditioned on the Atomic switch (the atomic fix removes Read/Write and
// adds IncAtomic).
func (m *LostUpdate) Actions() []string {
	if m.Atomic {
		return []string{"IncAtomic"}
	}
	return []string{"Read", "Write"}
}

// Invariants implements spec.Machine: when every process is done, the
// counter must equal N.
func (m *LostUpdate) Invariants() []spec.Invariant {
	return []spec.Invariant{{
		Name: "NoLostUpdate",
		Check: func(st spec.State) error {
			s := st.(*LostUpdateState)
			for _, pc := range s.PC {
				if pc != pcDone {
					return nil
				}
			}
			if s.Mem != m.N {
				return fmt.Errorf("all processes done but mem = %d, want %d", s.Mem, m.N)
			}
			return nil
		},
	}}
}

// NumNodes implements spec.Symmetric.
func (m *LostUpdate) NumNodes() int { return m.N }

// Permute implements spec.Symmetric.
func (m *LostUpdate) Permute(st spec.State, perm []int) spec.State {
	s := st.(*LostUpdateState)
	n := &LostUpdateState{Mem: s.Mem, Local: make([]int, m.N), PC: make([]int, m.N)}
	for i := 0; i < m.N; i++ {
		n.Local[perm[i]] = s.Local[i]
		n.PC[perm[i]] = s.PC[i]
	}
	return n
}

// PermutedFingerprint implements spec.FastSymmetric: one digest pass plus
// one combine under perm, equal to Permute(st, perm).Fingerprint().
func (m *LostUpdate) PermutedFingerprint(st spec.State, perm []int) uint64 {
	s := st.(*LostUpdateState)
	var nodeBuf [orbitMaxNodes]uint64
	node := orbitNodeBuffer(m.N, &nodeBuf)
	s.orbitDigests(node)
	var invBuf [orbitMaxNodes]int
	inv := invBuf[:]
	if m.N > orbitMaxNodes {
		inv = make([]int, m.N)
	} else {
		inv = invBuf[:m.N]
	}
	for i, p := range perm {
		inv[p] = i
	}
	return s.orbitCombine(node, inv)
}

// OrbitFingerprint implements spec.OrbitHasher: the minimum fingerprint
// over all process permutations from one digest pass plus cheap combines.
func (m *LostUpdate) OrbitFingerprint(st spec.State, perms *spec.PermTable, scratch *fp.OrbitScratch) (uint64, bool) {
	s := st.(*LostUpdateState)
	scratch.Reset(m.N)
	s.orbitDigests(scratch.Node)
	plain := s.orbitCombine(scratch.Node, perms.Identity)
	min := plain
	for k := range perms.NonIdentity {
		if f := s.orbitCombine(scratch.Node, perms.NonIdentityInv[k]); f < min {
			min = f
		}
	}
	return min, min != plain
}

// AppendState implements spec.StateCodec: Mem then the per-process Local and
// PC registers as varints. The process count comes from the machine, so the
// encoding carries no lengths.
func (m *LostUpdate) AppendState(dst []byte, st spec.State) []byte {
	s := st.(*LostUpdateState)
	dst = binary.AppendVarint(dst, int64(s.Mem))
	for i := 0; i < m.N; i++ {
		dst = binary.AppendVarint(dst, int64(s.Local[i]))
	}
	for i := 0; i < m.N; i++ {
		dst = binary.AppendVarint(dst, int64(s.PC[i]))
	}
	return dst
}

// DecodeState implements spec.StateCodec.
func (m *LostUpdate) DecodeState(src []byte) (spec.State, []byte, error) {
	next := func() (int, error) {
		v, n := binary.Varint(src)
		if n <= 0 {
			return 0, fmt.Errorf("toy: truncated state encoding")
		}
		src = src[n:]
		return int(v), nil
	}
	mem, err := next()
	if err != nil {
		return nil, nil, err
	}
	ints := make([]int, 2*m.N)
	s := &LostUpdateState{Mem: mem, Local: ints[0:m.N:m.N], PC: ints[m.N : 2*m.N : 2*m.N]}
	for i := 0; i < m.N; i++ {
		if s.Local[i], err = next(); err != nil {
			return nil, nil, err
		}
	}
	for i := 0; i < m.N; i++ {
		if s.PC[i], err = next(); err != nil {
			return nil, nil, err
		}
	}
	return s, src, nil
}
