package toy_test

import (
	"testing"

	"github.com/sandtable-go/sandtable/internal/spec/spectest"
	"github.com/sandtable-go/sandtable/internal/specs/toy"
)

// TestAppendNextMatchesNext property-tests the spec.BufferedMachine contract
// on both toy variants (the racy model and the atomic fix).
func TestAppendNextMatchesNext(t *testing.T) {
	for _, m := range []*toy.LostUpdate{{N: 3}, {N: 3, Atomic: true}} {
		spectest.AssertBufferedEquiv(t, m, 20, 10, 3)
	}
}
