package toy_test

import (
	"testing"

	"github.com/sandtable-go/sandtable/internal/spec/spectest"
	"github.com/sandtable-go/sandtable/internal/specs/toy"
)

// TestOrbitFingerprintMatchesReference property-tests the spec.OrbitHasher
// contract on the toy model through the shared spectest harness.
func TestOrbitFingerprintMatchesReference(t *testing.T) {
	spectest.AssertOrbitEquiv(t, &toy.LostUpdate{N: 3}, 20, 10, 5)
}

// TestAppendNextMatchesNext property-tests the spec.BufferedMachine contract
// on both toy variants (the racy model and the atomic fix).
func TestAppendNextMatchesNext(t *testing.T) {
	for _, m := range []*toy.LostUpdate{{N: 3}, {N: 3, Atomic: true}} {
		spectest.AssertBufferedEquiv(t, m, 20, 10, 3)
	}
}
