// Package histories implements a linearizability checker for register
// (key-value) operation histories, in the Wing & Gong style: exhaustive
// search over linearization orders consistent with the history's real-time
// precedence, memoised on the frontier state.
//
// SandTable uses it to validate KV operation histories recorded while
// replaying Xraft-KV traces at the implementation level: the
// specification-level Linearizability invariant flags a violating schedule,
// and the checker independently confirms that the recorded history admits
// no linearization (§3.4's no-false-alarms discipline, applied to the
// system-specific property the paper checks for Xraft-KV).
package histories

import (
	"fmt"
	"sort"
	"strings"
)

// Kind distinguishes reads from writes.
type Kind int

// Operation kinds.
const (
	Write Kind = iota
	Read
)

// Op is one completed client operation on a single key. Invoke and Complete
// are logical timestamps (e.g. trace event indexes): operation A precedes B
// in real time iff A.Complete < B.Invoke.
type Op struct {
	Client   int
	Kind     Kind
	Key      string
	Value    string
	Invoke   int
	Complete int
}

func (o Op) String() string {
	k := "w"
	if o.Kind == Read {
		k = "r"
	}
	return fmt.Sprintf("%s(%s=%s)@[%d,%d]", k, o.Key, o.Value, o.Invoke, o.Complete)
}

// Check reports whether the history is linearizable under register
// semantics (a read returns the value of the latest linearized write to its
// key, or the zero value "" before any write).
func Check(history []Op) bool {
	if len(history) == 0 {
		return true
	}
	// Check each key independently: register semantics do not couple keys.
	byKey := make(map[string][]Op)
	for _, op := range history {
		byKey[op.Key] = append(byKey[op.Key], op)
	}
	for _, ops := range byKey {
		if !checkKey(ops) {
			return false
		}
	}
	return true
}

// checkKey searches linearizations of one key's history.
func checkKey(ops []Op) bool {
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].Invoke < ops[j].Invoke })
	n := len(ops)
	if n > 63 {
		// The checker is meant for model-checking-scale histories.
		panic("histories: history too large")
	}
	memo := make(map[memoKey]bool)
	return search(ops, 0, "", memo)
}

type memoKey struct {
	done  uint64
	value string
}

// search tries to linearize the remaining operations given the set already
// linearized (bitmask done) and the register's current value.
func search(ops []Op, done uint64, value string, memo map[memoKey]bool) bool {
	n := len(ops)
	if done == (uint64(1)<<n)-1 {
		return true
	}
	key := memoKey{done: done, value: value}
	if v, ok := memo[key]; ok {
		return v
	}
	// minimality: an operation may linearize next only if every operation
	// that completed before its invocation has already been linearized.
	for i := 0; i < n; i++ {
		if done&(1<<i) != 0 {
			continue
		}
		ok := true
		for j := 0; j < n; j++ {
			if j == i || done&(1<<j) != 0 {
				continue
			}
			if ops[j].Complete < ops[i].Invoke {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		switch ops[i].Kind {
		case Write:
			if search(ops, done|(1<<i), ops[i].Value, memo) {
				memo[key] = true
				return true
			}
		case Read:
			if ops[i].Value == value && search(ops, done|(1<<i), value, memo) {
				memo[key] = true
				return true
			}
		}
	}
	memo[key] = false
	return false
}

// Explain renders the history compactly for failure reports.
func Explain(history []Op) string {
	parts := make([]string, len(history))
	for i, op := range history {
		parts[i] = op.String()
	}
	return strings.Join(parts, " ")
}
