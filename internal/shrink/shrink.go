// Package shrink minimizes counterexample and divergence traces with delta
// debugging (Zeller & Hildebrandt's ddmin): given a specification-level
// trace that reproduces a failure — an invariant violation found by the
// explorer, or a spec/impl divergence found by conformance checking — it
// searches subsets of removable events, revalidates every candidate as a
// real execution of the specification machine (guided replay through
// spec.Machine), and keeps the shortest event sequence for which the
// failure oracle still fires.
//
// Minimized traces are what make the paper's §3.4 confirmation loop fast in
// practice: the artifact handed to replay.ConfirmBug — and ultimately to the
// user — is 1-minimal, meaning no single remaining event can be removed
// without losing the failure. BFS counterexamples are already depth-minimal
// and typically pass through unchanged; the big wins are random-walk
// violations (simulation mode) and conformance divergence traces, whose
// walks carry events unrelated to the failure (see "eXtreme Modelling in
// Practice" and trace-validation practice generally: short divergence
// traces are what make spec/impl alignment iterations fast).
package shrink

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/sandtable-go/sandtable/internal/engine"
	"github.com/sandtable-go/sandtable/internal/obs"
	"github.com/sandtable-go/sandtable/internal/replay"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/trace"
)

// Candidate is a revalidated sub-trace: a real execution of the
// specification machine built from a subsequence of the original events.
type Candidate struct {
	// Trace is the rebuilt trace with variables and fingerprints recomputed
	// along the candidate execution (not copied from the original — removing
	// events changes the states the remaining events produce).
	Trace *trace.Trace
	// Init is the initial state the execution started from.
	Init spec.State
	// States holds the state after each step; len(States) == len(Trace.Steps).
	States []spec.State
}

// Oracle reports whether a revalidated candidate still reproduces the
// failure being minimized. It must be deterministic: ddmin's 1-minimality
// guarantee (and the determinism of the minimized trace) depends on it.
type Oracle func(c *Candidate) bool

// Options tunes a minimization.
type Options struct {
	// RecordVars includes recomputed variable maps in candidate traces.
	// Required when the minimized trace will be replayed at the
	// implementation level (replay compares step variables); defaults to
	// true when the original trace carries variables.
	RecordVars bool
	// MaxAttempts bounds the number of candidate evaluations (0 = no
	// bound). When the bound is hit the best trace found so far is
	// returned with Result.Capped set; it may not be 1-minimal.
	MaxAttempts int
	// Metrics, when set, receives shrink.attempts / shrink.invalid /
	// shrink.removed counters and the phase.shrink timer.
	Metrics *obs.Registry
	// Tracer, when set, receives one "reduced" event per successful
	// reduction and a final "done" event.
	Tracer *obs.Tracer
}

// Result is the outcome of a minimization.
type Result struct {
	// Trace is the minimized trace (the original when nothing was removable).
	Trace *trace.Trace
	// OriginalLen and MinimizedLen count trace events before and after.
	OriginalLen  int
	MinimizedLen int
	// Attempts counts oracle evaluations of spec-valid candidates; Invalid
	// counts candidates rejected because their event subsequence is not a
	// legal execution of the specification (an event was not enabled).
	Attempts int
	Invalid  int
	// Removed = OriginalLen - MinimizedLen.
	Removed int
	// Capped reports that MaxAttempts stopped the search before 1-minimality
	// was established.
	Capped bool
}

// Minimize runs ddmin over the trace's event sequence. The original trace
// must itself reproduce under the oracle (after guided replay through m) —
// otherwise an error is returned, since a failing baseline would make every
// reduction meaningless. The returned trace is 1-minimal with respect to
// single-event removal unless Capped.
func Minimize(m spec.Machine, t *trace.Trace, oracle Oracle, opts Options) (*Result, error) {
	if t == nil || len(t.Steps) == 0 {
		return nil, fmt.Errorf("shrink: empty trace")
	}
	stop := opts.Metrics.StartPhase("shrink")
	defer stop()
	recordVars := opts.RecordVars || t.Init != nil || t.Steps[0].Vars != nil

	attempts := opts.Metrics.Counter("shrink.attempts")
	invalid := opts.Metrics.Counter("shrink.invalid")
	removedCtr := opts.Metrics.Counter("shrink.removed")

	events := t.Events()
	res := &Result{OriginalLen: len(events)}
	cache := make(map[string]bool)

	// test revalidates the subsequence events[idx[0]], events[idx[1]], ... at
	// the specification level and asks the oracle whether it still fails.
	test := func(idx []int) bool {
		key := subsetKey(idx)
		if verdict, ok := cache[key]; ok {
			return verdict
		}
		if opts.MaxAttempts > 0 && res.Attempts+res.Invalid >= opts.MaxAttempts {
			res.Capped = true
			return false
		}
		sub := make([]trace.Event, len(idx))
		for i, j := range idx {
			sub[i] = events[j]
		}
		cand, ok := Replay(m, t.Init, sub, recordVars)
		var verdict bool
		if !ok {
			res.Invalid++
			invalid.Inc()
		} else {
			res.Attempts++
			attempts.Inc()
			verdict = oracle(cand)
		}
		cache[key] = verdict
		return verdict
	}

	all := make([]int, len(events))
	for i := range all {
		all[i] = i
	}
	if !test(all) {
		return nil, fmt.Errorf("shrink: original trace (%d events) does not reproduce under the oracle", len(events))
	}

	// ddmin proper: try removing ever-finer chunks until no chunk of any
	// granularity (down to single events) can be removed.
	cur := all
	n := 2
	for len(cur) >= 2 && !res.Capped {
		reduced := false
		for _, complement := range complements(cur, n) {
			if test(complement) {
				if opts.Tracer != nil {
					opts.Tracer.Emit(obs.Event{
						Layer: "shrink", Kind: "reduced", Node: -1,
						Detail: map[string]string{
							"from":     strconv.Itoa(len(cur)),
							"to":       strconv.Itoa(len(complement)),
							"attempts": strconv.Itoa(res.Attempts + res.Invalid),
						},
					})
				}
				cur = complement
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(cur) {
				break
			}
			n *= 2
			if n > len(cur) {
				n = len(cur)
			}
		}
	}

	final, ok := Replay(m, t.Init, pick(events, cur), recordVars)
	if !ok {
		// Cannot happen: cur was accepted by test, which replayed it.
		return nil, fmt.Errorf("shrink: minimized trace failed revalidation")
	}
	res.Trace = final.Trace
	res.MinimizedLen = len(cur)
	res.Removed = res.OriginalLen - res.MinimizedLen
	removedCtr.Add(int64(res.Removed))
	if opts.Tracer != nil {
		opts.Tracer.Emit(obs.Event{
			Layer: "shrink", Kind: "done", Node: -1,
			Detail: map[string]string{
				"original":  strconv.Itoa(res.OriginalLen),
				"minimized": strconv.Itoa(res.MinimizedLen),
				"attempts":  strconv.Itoa(res.Attempts),
				"invalid":   strconv.Itoa(res.Invalid),
			},
		})
	}
	return res, nil
}

// complements returns the candidate index lists obtained by deleting each of
// n contiguous chunks from cur (the "test complements" step of ddmin).
func complements(cur []int, n int) [][]int {
	if n > len(cur) {
		n = len(cur)
	}
	size := (len(cur) + n - 1) / n
	var out [][]int
	for lo := 0; lo < len(cur); lo += size {
		hi := lo + size
		if hi > len(cur) {
			hi = len(cur)
		}
		comp := make([]int, 0, len(cur)-(hi-lo))
		comp = append(comp, cur[:lo]...)
		comp = append(comp, cur[hi:]...)
		out = append(out, comp)
	}
	return out
}

func pick(events []trace.Event, idx []int) []trace.Event {
	out := make([]trace.Event, len(idx))
	for i, j := range idx {
		out[i] = events[j]
	}
	return out
}

func subsetKey(idx []int) string {
	var b strings.Builder
	for _, i := range idx {
		b.WriteString(strconv.Itoa(i))
		b.WriteByte(',')
	}
	return b.String()
}

// Replay performs a guided replay of an event sequence through the
// specification machine: starting from the machine's initial state (matched
// against init when the machine has several), it follows, at every step,
// the enabled successor whose event Matches the next requested event. It
// returns false when some event is not enabled — the subsequence is not a
// legal execution (e.g. a delivery whose message was never sent because the
// send-triggering event was removed).
//
// Note the replay matches event *descriptors*, not the originating states:
// after removals a matching event may produce a different successor state
// than it did in the original trace. That is exactly what ddmin needs — the
// oracle re-judges the rebuilt execution, and the rebuilt trace carries
// recomputed variables so implementation-level replay compares against the
// states this execution actually visits.
func Replay(m spec.Machine, init map[string]string, events []trace.Event, recordVars bool) (*Candidate, bool) {
	cur := initialState(m, init)
	if cur == nil {
		return nil, false
	}
	cand := &Candidate{
		Trace: &trace.Trace{System: m.Name()},
		Init:  cur,
	}
	if recordVars {
		cand.Trace.Init = cur.Vars()
	}
	for _, ev := range events {
		var found *spec.Succ
		for _, su := range m.Next(cur) {
			su := su
			if su.Event.Matches(ev) {
				found = &su
				break
			}
		}
		if found == nil {
			return nil, false
		}
		cur = found.State
		step := trace.Step{Event: found.Event, Fingerprint: cur.Fingerprint()}
		if recordVars {
			step.Vars = cur.Vars()
		}
		cand.Trace.Steps = append(cand.Trace.Steps, step)
		cand.States = append(cand.States, cur)
	}
	return cand, true
}

// initialState picks the machine init state: the only one when there is
// exactly one, otherwise the first whose rendered variables equal init.
func initialState(m spec.Machine, init map[string]string) spec.State {
	inits := m.Init()
	if len(inits) == 0 {
		return nil
	}
	if len(inits) == 1 || init == nil {
		return inits[0]
	}
	for _, s := range inits {
		if sameVars(s.Vars(), init) {
			return s
		}
	}
	return inits[0]
}

func sameVars(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// InvariantOracle returns an oracle that fires when any state along the
// candidate violates the named invariant of machine m (empty name = any
// invariant). Use it to minimize explorer counterexamples while preserving
// the violated property.
func InvariantOracle(m spec.Machine, invariant string) Oracle {
	invs := m.Invariants()
	if invariant != "" {
		var keep []spec.Invariant
		for _, inv := range invs {
			if inv.Name == invariant {
				keep = append(keep, inv)
			}
		}
		invs = keep
	}
	return func(c *Candidate) bool {
		for _, s := range c.States {
			for _, inv := range invs {
				if inv.Check(s) != nil {
					return true
				}
			}
		}
		return false
	}
}

// DivergenceOracle returns an oracle that fires when replaying the
// candidate against a fresh implementation cluster reproduces the original
// spec/impl divergence: the same set of diverging variable keys, or — when
// the original divergence was an execution error (crash, resource-check
// failure) — any step error. Use it to minimize conformance discrepancy
// traces. Each evaluation boots one cluster via newCluster(seed), mirroring
// conformance.Run's fresh-cluster-per-walk discipline.
func DivergenceOracle(newCluster func(seed int64) (*engine.Cluster, error), seed int64, ropts replay.Options, want *replay.StepResult) Oracle {
	// Candidate replays always compare every step: the divergence may move
	// to an earlier step once unrelated events are removed.
	ropts.CompareEachStep = true
	return func(c *Candidate) bool {
		cl, err := newCluster(seed)
		if err != nil {
			return false
		}
		res, err := replay.Run(c.Trace, cl, ropts)
		if err != nil || res.Divergence == nil {
			return false
		}
		if want == nil {
			return true
		}
		if want.Err != nil {
			return res.Divergence.Err != nil
		}
		return sameKeys(res.Divergence.DiffKeys, want.DiffKeys)
	}
}

func sameKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]string(nil), a...)
	bs := append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
