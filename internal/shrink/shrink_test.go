package shrink

import (
	"fmt"
	"strconv"
	"testing"

	"github.com/sandtable-go/sandtable/internal/engine"
	"github.com/sandtable-go/sandtable/internal/explorer"
	"github.com/sandtable-go/sandtable/internal/fp"
	"github.com/sandtable-go/sandtable/internal/obs"
	"github.com/sandtable-go/sandtable/internal/replay"
	"github.com/sandtable-go/sandtable/internal/spec"
	"github.com/sandtable-go/sandtable/internal/trace"
	"github.com/sandtable-go/sandtable/internal/vos"
)

// incState / incMachine: each client request increments a per-node counter.
// The "NoOverflow" invariant bounds node 0's counter, so a violating walk
// typically carries increments to other nodes that ddmin must strip.
type incState struct {
	vals     []int
	spiked   bool
	counters spec.Counters
}

func (s *incState) Fingerprint() uint64 {
	h := fp.New()
	h.WriteInts(s.vals)
	if s.spiked {
		h.WriteInt(1)
	}
	s.counters.Hash(h)
	return h.Sum()
}

func (s *incState) Vars() map[string]string {
	m := map[string]string{}
	for i, v := range s.vals {
		m[fmt.Sprintf("count[%d]", i)] = strconv.Itoa(v)
	}
	return m
}

func (s *incState) clone() *incState {
	return &incState{vals: append([]int(nil), s.vals...), spiked: s.spiked, counters: s.counters}
}

// incMachine's gate: when gated, the internal "Spike" action is enabled once
// count[0] >= 2 and flags the violation; otherwise the invariant fires
// directly at count[0] >= 3. The gated variant forces ddmin through invalid
// candidates (removing an increment disables Spike).
type incMachine struct {
	n      int
	gated  bool
	budget spec.Budget
}

func (m *incMachine) Name() string { return "inc" }

func (m *incMachine) Init() []spec.State {
	return []spec.State{&incState{vals: make([]int, m.n)}}
}

func (m *incMachine) Next(st spec.State) []spec.Succ {
	s := st.(*incState)
	var out []spec.Succ
	if s.counters.CanRequest(m.budget) {
		for i := 0; i < m.n; i++ {
			n := s.clone()
			n.vals[i]++
			n.counters.Requests++
			out = append(out, spec.Succ{
				Event: trace.Event{Type: trace.EvRequest, Action: "Increment", Node: i, Payload: "inc"},
				State: n,
			})
		}
	}
	if m.gated && !s.spiked && s.vals[0] >= 2 {
		n := s.clone()
		n.spiked = true
		out = append(out, spec.Succ{
			Event: trace.Event{Type: trace.EvInternal, Action: "Spike", Node: 0},
			State: n,
		})
	}
	return out
}

func (m *incMachine) Invariants() []spec.Invariant {
	if m.gated {
		return []spec.Invariant{{
			Name: "NoSpike",
			Check: func(st spec.State) error {
				if st.(*incState).spiked {
					return fmt.Errorf("spiked")
				}
				return nil
			},
		}}
	}
	return []spec.Invariant{{
		Name: "NoOverflow",
		Check: func(st spec.State) error {
			if v := st.(*incState).vals[0]; v >= 3 {
				return fmt.Errorf("count[0] = %d overflows", v)
			}
			return nil
		},
	}}
}

// violatingWalk returns the first seeded walk that violates, so tests stay
// deterministic without hardcoding seeds.
func violatingWalk(t *testing.T, m spec.Machine, from int64) (*explorer.WalkResult, int64) {
	t.Helper()
	for seed := from; seed < from+200; seed++ {
		sim := explorer.NewSimulator(m, explorer.SimOptions{
			Seed: seed, CheckInvariants: true, RecordVars: true,
		})
		if w := sim.Walk(seed); w.Violation != nil {
			return w, seed
		}
	}
	t.Fatal("no violating walk in 200 seeds")
	return nil, 0
}

func TestMinimizeTable(t *testing.T) {
	cases := []struct {
		name    string
		machine *incMachine
		// invariant pins the oracle; wantLen the 1-minimal length.
		invariant   string
		wantLen     int
		wantInvalid bool // expect invalid candidates along the way
	}{
		{
			name:      "overflow-drops-unrelated-increments",
			machine:   &incMachine{n: 3, budget: spec.Budget{MaxRequests: 9}},
			invariant: "NoOverflow",
			wantLen:   3, // exactly three Increment(node 0)
		},
		{
			name:        "gated-spike-keeps-enabling-prefix",
			machine:     &incMachine{n: 3, gated: true, budget: spec.Budget{MaxRequests: 9}},
			invariant:   "NoSpike",
			wantLen:     3, // Increment(0), Increment(0), Spike
			wantInvalid: true,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			w, _ := violatingWalk(t, tc.machine, 1)
			if len(w.Trace.Steps) <= tc.wantLen {
				t.Fatalf("walk already minimal (%d steps) — test needs a longer walk", len(w.Trace.Steps))
			}
			reg := obs.NewRegistry()
			res, err := Minimize(tc.machine, w.Trace, InvariantOracle(tc.machine, tc.invariant), Options{Metrics: reg})
			if err != nil {
				t.Fatal(err)
			}
			if res.MinimizedLen != tc.wantLen {
				t.Fatalf("minimized to %d events, want %d:\n%s", res.MinimizedLen, tc.wantLen, res.Trace.Format(false))
			}
			if res.Removed != res.OriginalLen-res.MinimizedLen {
				t.Errorf("Removed = %d, want %d", res.Removed, res.OriginalLen-res.MinimizedLen)
			}
			if got := reg.Counter("shrink.attempts").Value(); got != int64(res.Attempts) {
				t.Errorf("shrink.attempts metric = %d, result says %d", got, res.Attempts)
			}
			if reg.Counter("phase.shrink_ns").Value() <= 0 {
				t.Error("phase.shrink timer not recorded")
			}
			if tc.wantInvalid && res.Invalid == 0 {
				t.Error("expected invalid candidates (gated action) but saw none")
			}

			// The minimized trace still violates the pinned invariant.
			cand, ok := Replay(tc.machine, res.Trace.Init, res.Trace.Events(), true)
			if !ok {
				t.Fatal("minimized trace is not a valid spec execution")
			}
			if !InvariantOracle(tc.machine, tc.invariant)(cand) {
				t.Fatal("minimized trace no longer violates the invariant")
			}

			// 1-minimality: removing any single remaining event loses the
			// violation (or legality).
			events := res.Trace.Events()
			for i := range events {
				sub := append(append([]trace.Event(nil), events[:i]...), events[i+1:]...)
				c, ok := Replay(tc.machine, res.Trace.Init, sub, true)
				if ok && InvariantOracle(tc.machine, tc.invariant)(c) {
					t.Fatalf("not 1-minimal: event %d (%s) is removable", i, events[i])
				}
			}
		})
	}
}

func TestMinimizeIsDeterministic(t *testing.T) {
	m := &incMachine{n: 3, budget: spec.Budget{MaxRequests: 9}}
	oracle := func() Oracle { return InvariantOracle(m, "NoOverflow") }

	// Same walk, minimized twice: identical traces.
	w, seed := violatingWalk(t, m, 1)
	r1, err := Minimize(m, w.Trace, oracle(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Minimize(m, w.Trace, oracle(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Trace.Format(true) != r2.Trace.Format(true) {
		t.Error("same input minimized to different traces")
	}

	// Walks from different seeds: the 1-minimal failure is the same event
	// sequence (three increments of node 0), so minimization converges.
	w2, _ := violatingWalk(t, m, seed+1)
	r3, err := Minimize(m, w2.Trace, oracle(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Trace.Format(false) != r3.Trace.Format(false) {
		t.Errorf("different seeds minimized to different event sequences:\n%s\nvs\n%s",
			r1.Trace.Format(false), r3.Trace.Format(false))
	}
}

func TestMinimizeAlreadyMinimal(t *testing.T) {
	m := &incMachine{n: 3, budget: spec.Budget{MaxRequests: 9}}
	ev := trace.Event{Type: trace.EvRequest, Action: "Increment", Node: 0, Payload: "inc"}
	cand, ok := Replay(m, nil, []trace.Event{ev, ev, ev}, true)
	if !ok {
		t.Fatal("hand-built trace invalid")
	}
	res, err := Minimize(m, cand.Trace, InvariantOracle(m, "NoOverflow"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 0 || res.MinimizedLen != 3 {
		t.Errorf("minimal trace changed: removed %d, len %d", res.Removed, res.MinimizedLen)
	}
}

func TestMinimizeRejectsNonReproducingBaseline(t *testing.T) {
	m := &incMachine{n: 3, budget: spec.Budget{MaxRequests: 9}}
	ev := trace.Event{Type: trace.EvRequest, Action: "Increment", Node: 1, Payload: "inc"}
	cand, _ := Replay(m, nil, []trace.Event{ev}, true)
	if _, err := Minimize(m, cand.Trace, InvariantOracle(m, "NoOverflow"), Options{}); err == nil {
		t.Fatal("baseline that does not reproduce must be rejected")
	}
}

func TestReplayRejectsDisabledEvents(t *testing.T) {
	m := &incMachine{n: 2, budget: spec.Budget{MaxRequests: 2}}
	inc := trace.Event{Type: trace.EvRequest, Action: "Increment", Node: 0, Payload: "inc"}
	if _, ok := Replay(m, nil, []trace.Event{inc, inc, inc}, true); ok {
		t.Error("budget-exhausted event accepted")
	}
	bogus := trace.Event{Type: trace.EvTimeout, Action: "NoSuchAction", Node: 0}
	if _, ok := Replay(m, nil, []trace.Event{bogus}, true); ok {
		t.Error("unknown event accepted")
	}
}

// incProc mirrors incMachine at the implementation level; skewAfter > 0
// seeds a defect (the node over-counts from that increment on).
type incProc struct {
	val       int
	skewAfter int
}

func (p *incProc) Start(vos.Env)       { p.val = 0 }
func (p *incProc) Receive(int, []byte) {}
func (p *incProc) Tick()               {}
func (p *incProc) ClientRequest(string) {
	p.val++
	if p.skewAfter > 0 && p.val >= p.skewAfter {
		p.val++
	}
}
func (p *incProc) Observe() map[string]string {
	return map[string]string{"count": strconv.Itoa(p.val)}
}

func newIncCluster(nodes, skewAfter int) func(seed int64) (*engine.Cluster, error) {
	return func(seed int64) (*engine.Cluster, error) {
		return engine.NewCluster(engine.Config{Nodes: nodes}, func(id int) vos.Process {
			return &incProc{skewAfter: skewAfter}
		})
	}
}

// TestMinimizedViolationConfirmsAtImplementationLevel closes the §3.4 loop:
// the ddmin result is handed to replay.ConfirmBug against a fresh cluster
// and must reproduce every specification state.
func TestMinimizedViolationConfirmsAtImplementationLevel(t *testing.T) {
	m := &incMachine{n: 3, budget: spec.Budget{MaxRequests: 9}}
	w, _ := violatingWalk(t, m, 1)
	res, err := Minimize(m, w.Trace, InvariantOracle(m, "NoOverflow"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := newIncCluster(3, 0)(1)
	if err != nil {
		t.Fatal(err)
	}
	conf, err := replay.ConfirmBug(res.Trace, cluster, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !conf.Confirmed {
		t.Fatalf("minimized trace did not confirm: %s", conf.Divergence.Describe())
	}
}

// TestDivergenceOracleShrinksDiscrepancyTrace minimizes a conformance-style
// divergence: the implementation over-counts from the second increment of a
// node, so the minimal diverging trace is two increments of one node.
func TestDivergenceOracleShrinksDiscrepancyTrace(t *testing.T) {
	m := &incMachine{n: 2, budget: spec.Budget{MaxRequests: 8}}
	newCluster := newIncCluster(2, 2)

	// Find a diverging walk the long way, as conformance.Run would.
	var diverging *trace.Trace
	var want *replay.StepResult
	for seed := int64(1); seed < 50 && diverging == nil; seed++ {
		sim := explorer.NewSimulator(m, explorer.SimOptions{Seed: seed, RecordVars: true})
		w := sim.Walk(seed)
		cl, err := newCluster(seed)
		if err != nil {
			t.Fatal(err)
		}
		r, err := replay.Run(w.Trace, cl, replay.Options{CompareEachStep: true})
		if err != nil {
			t.Fatal(err)
		}
		if r.Divergence != nil && len(w.Trace.Steps) > 2 {
			diverging, want = w.Trace, r.Divergence
		}
	}
	if diverging == nil {
		t.Fatal("no diverging walk found")
	}

	res, err := Minimize(m, diverging, DivergenceOracle(newCluster, 1, replay.Options{}, want), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MinimizedLen != 2 {
		t.Fatalf("minimized divergence has %d events, want 2:\n%s", res.MinimizedLen, res.Trace.Format(false))
	}
	ev := res.Trace.Steps[0].Event
	if res.Trace.Steps[1].Event.Node != ev.Node {
		t.Error("minimal divergence should be two increments of the same node")
	}
	// The preserved diff key names the skewed node.
	cl, _ := newCluster(1)
	r, err := replay.Run(res.Trace, cl, replay.Options{CompareEachStep: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Divergence == nil || !sameKeys(r.Divergence.DiffKeys, want.DiffKeys) {
		t.Errorf("minimized trace does not reproduce the original diff keys %v", want.DiffKeys)
	}
}

func TestMaxAttemptsCaps(t *testing.T) {
	m := &incMachine{n: 3, budget: spec.Budget{MaxRequests: 9}}
	w, _ := violatingWalk(t, m, 1)
	res, err := Minimize(m, w.Trace, InvariantOracle(m, "NoOverflow"), Options{MaxAttempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Capped {
		t.Error("MaxAttempts did not cap the search")
	}
	if res.MinimizedLen > res.OriginalLen {
		t.Error("capped result longer than input")
	}
}
