package fpset

import (
	"bytes"
	"math/rand"
	"testing"
)

// spillSet builds a set with spill enabled into a test temp dir.
func spillSet(t *testing.T, budget int64) *Set {
	t.Helper()
	s := New(4)
	if err := s.EnableSpill(SpillConfig{Dir: t.TempDir(), BudgetBytes: budget, MaxRuns: 3}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.CloseSpill)
	return s
}

// fill inserts n pseudo-random fingerprints at the given depth and returns
// them. The rng is seeded so runs are reproducible.
func fill(s *Set, rng *rand.Rand, n int, depth int32) []uint64 {
	fps := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		fp := rng.Uint64()
		if s.Insert(fp, fp^0xabc, depth) {
			fps = append(fps, fp)
		}
	}
	return fps
}

// TestSpillFrozenPreservesLookupAndDedup spills one depth and checks that
// every spilled fingerprint still resolves with its original edge, that
// re-inserting it is a dedup hit, and that Len counts RAM and disk together.
func TestSpillFrozenPreservesLookupAndDedup(t *testing.T) {
	s := spillSet(t, 0)
	rng := rand.New(rand.NewSource(1))
	frozen := fill(s, rng, 5000, 1)
	live := fill(s, rng, 500, 2)

	moved, err := s.SpillFrozen(1)
	if err != nil {
		t.Fatal(err)
	}
	if moved != len(frozen) {
		t.Fatalf("spilled %d entries, want %d", moved, len(frozen))
	}
	if got := s.Len(); got != int64(len(frozen)+len(live)) {
		t.Fatalf("Len after spill = %d, want %d", got, len(frozen)+len(live))
	}
	for _, fp := range frozen {
		e, ok := s.Lookup(fp)
		if !ok {
			t.Fatalf("spilled fp %#x not found", fp)
		}
		if e.Parent != fp^0xabc || e.Depth != 1 {
			t.Fatalf("spilled fp %#x edge %+v corrupted", fp, e)
		}
		if s.Insert(fp, 0, 3) {
			t.Fatalf("re-insert of spilled fp %#x not deduplicated", fp)
		}
	}
	st := s.Stats()
	if st.SpilledEntries != int64(len(frozen)) || st.SpillRuns != 1 || st.SpillEvents != 1 {
		t.Fatalf("stats after spill: %+v", st)
	}
	if st.SpilledShards == 0 || st.SpillBytes == 0 {
		t.Fatalf("stats missing shard/byte accounting: %+v", st)
	}
	if st.DiskProbes == 0 || st.DiskHits == 0 {
		t.Fatalf("expected disk probes after spilled lookups: %+v", st)
	}
	if st.Entries != int64(len(frozen)+len(live)) {
		t.Fatalf("Stats.Entries = %d, want %d", st.Entries, len(frozen)+len(live))
	}
}

// TestSpillMergeCompactsRuns spills enough depths to exceed MaxRuns and
// checks the runs collapse into one with nothing lost.
func TestSpillMergeCompactsRuns(t *testing.T) {
	s := spillSet(t, 0)
	rng := rand.New(rand.NewSource(2))
	var all []uint64
	for d := int32(1); d <= 5; d++ {
		all = append(all, fill(s, rng, 1000, d)...)
		if _, err := s.SpillFrozen(d); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.SpillMerges == 0 {
		t.Fatalf("expected at least one merge with MaxRuns=3: %+v", st)
	}
	if st.SpillRuns > 3 {
		t.Fatalf("run count %d exceeds MaxRuns", st.SpillRuns)
	}
	if st.SpilledEntries != int64(len(all)) {
		t.Fatalf("spilled %d entries, want %d", st.SpilledEntries, len(all))
	}
	for _, fp := range all {
		if _, ok := s.Lookup(fp); !ok {
			t.Fatalf("fp %#x lost in merge", fp)
		}
	}
}

// TestSpillSnapshotRoundTrip serialises a half-spilled set and reads it
// back, asserting the deserialised (all-RAM) set is entry-for-entry equal.
func TestSpillSnapshotRoundTrip(t *testing.T) {
	s := spillSet(t, 0)
	rng := rand.New(rand.NewSource(3))
	fill(s, rng, 3000, 1)
	fill(s, rng, 300, 2)
	if _, err := s.SpillFrozen(1); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf, 8)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != s.Len() {
		t.Fatalf("round trip Len %d != %d", back.Len(), s.Len())
	}
	count := 0
	s.Range(func(fp uint64, e Edge) bool {
		count++
		got, ok := back.Lookup(fp)
		if !ok || got != e {
			t.Fatalf("fp %#x: got %+v ok=%v want %+v", fp, got, ok, e)
		}
		return true
	})
	if int64(count) != s.Len() {
		t.Fatalf("Range visited %d entries, Len says %d", count, s.Len())
	}
}

// TestMaybeSpillHonoursBudget checks MaybeSpill is a no-op under budget and
// spills when MemBytes crosses it, shrinking the resident footprint.
func TestMaybeSpillHonoursBudget(t *testing.T) {
	s := spillSet(t, 1<<30) // budget far above anything the test allocates
	rng := rand.New(rand.NewSource(4))
	// Enough entries that the shard tables grow well past their floor, so
	// the post-spill rebuild has room to shrink them.
	fill(s, rng, 20000, 1)
	if n, err := s.MaybeSpill(1); err != nil || n != 0 {
		t.Fatalf("MaybeSpill under budget moved %d entries (err %v)", n, err)
	}

	s.spill.budget = 1 // now everything is over budget
	before := s.MemBytes()
	n, err := s.MaybeSpill(1)
	if err != nil || n == 0 {
		t.Fatalf("MaybeSpill over budget moved %d entries (err %v)", n, err)
	}
	if after := s.MemBytes(); after >= before {
		t.Fatalf("MemBytes did not shrink after spill: %d -> %d", before, after)
	}
}

// TestRangeNewerFiltersByDepth checks the delta-checkpoint iterator covers
// exactly the entries above the cutoff, across RAM and disk.
func TestRangeNewerFiltersByDepth(t *testing.T) {
	s := spillSet(t, 0)
	rng := rand.New(rand.NewSource(5))
	old := fill(s, rng, 1000, 1)
	fresh := fill(s, rng, 700, 2)
	if _, err := s.SpillFrozen(1); err != nil {
		t.Fatal(err)
	}
	// Spill depth 2 as well so the "newer" entries live on disk too.
	if _, err := s.SpillFrozen(2); err != nil {
		t.Fatal(err)
	}
	got := map[uint64]bool{}
	if err := s.RangeNewer(1, func(fp uint64, e Edge) bool {
		if e.Depth <= 1 {
			t.Fatalf("RangeNewer leaked depth %d", e.Depth)
		}
		got[fp] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(fresh) {
		t.Fatalf("RangeNewer found %d entries, want %d", len(got), len(fresh))
	}
	for _, fp := range old {
		if got[norm(fp)] {
			t.Fatalf("old fp %#x in delta", fp)
		}
	}
}
