package fpset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// The binary layout of a serialised set: a uint64 entry count followed by
// one 20-byte little-endian record per entry (fingerprint, parent, depth).
// The explorer's checkpoint file wraps this stream in a versioned envelope;
// the layout below never changes within a checkpoint version.
const recordSize = 8 + 8 + 4

// WriteTo serialises every entry to w, including entries spilled to disk
// runs. It locks one shard at a time, so the caller must ensure no
// concurrent Insert (the explorer snapshots only at level boundaries, where
// workers are quiesced). Returns the byte count written.
func (s *Set) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var buf [recordSize]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(s.Len()))
	if _, err := bw.Write(buf[:8]); err != nil {
		return 0, err
	}
	written := int64(8)
	var werr error
	rerr := s.rangeAll(func(fp uint64, e Edge) bool {
		binary.LittleEndian.PutUint64(buf[0:8], fp)
		binary.LittleEndian.PutUint64(buf[8:16], e.Parent)
		binary.LittleEndian.PutUint32(buf[16:20], uint32(e.Depth))
		if _, err := bw.Write(buf[:]); err != nil {
			werr = err
			return false
		}
		written += recordSize
		return true
	})
	if werr != nil {
		return written, werr
	}
	if rerr != nil {
		return written, rerr
	}
	return written, bw.Flush()
}

// Read deserialises a stream produced by WriteTo into a fresh set with the
// given shard count (<= 0 selects DefaultShards; the shard count is a
// runtime tuning knob, not part of the serialised state, so a snapshot
// written with one shard count may be read back with another).
func Read(r io.Reader, shards int) (*Set, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var buf [recordSize]byte
	if _, err := io.ReadFull(br, buf[:8]); err != nil {
		return nil, fmt.Errorf("fpset: read header: %w", err)
	}
	count := binary.LittleEndian.Uint64(buf[:8])
	s := New(shards)
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("fpset: read entry %d/%d: %w", i, count, err)
		}
		fp := binary.LittleEndian.Uint64(buf[0:8])
		parent := binary.LittleEndian.Uint64(buf[8:16])
		depth := int32(binary.LittleEndian.Uint32(buf[16:20]))
		s.Insert(fp, parent, depth)
	}
	return s, nil
}
