// Package fpset implements the explorer's concurrent fingerprint set — the
// reproduction of TLC's fingerprint set (the data structure behind the
// paper's stateful-search discipline, §2.1/§3.3). It is a lock-striped,
// power-of-two-sharded open-addressing hash table holding 64-bit state
// fingerprints plus the parent/depth edge metadata the explorer needs to
// reconstruct counterexample traces.
//
// Design:
//
//   - Sharding. A fingerprint's low bits select one of 2^k shards, each an
//     independent open-addressing table behind its own mutex. BFS expansion
//     workers probe-and-insert concurrently; two workers contend only when
//     their fingerprints land in the same shard, so throughput scales with
//     the shard count instead of funnelling every candidate state through
//     one serial dedup pass.
//   - Open addressing. Each shard stores keys in a flat power-of-two slice
//     probed linearly from a Fibonacci-hashed start slot, with the edge
//     metadata in a parallel slice so probe loops touch only the key array.
//     Growth doubles one shard at a time when it passes a ~13/16 load
//     factor, so resize cost is amortised and never stops the world.
//   - Determinism. Insert breaks parent ties deterministically: when the
//     same fingerprint is discovered at the same depth from two different
//     parents (a race between expansion workers), the numerically smallest
//     parent fingerprint wins. The final edge table — and therefore every
//     reconstructed counterexample — is identical across runs regardless of
//     scheduling.
//
// Like TLC, the explorer identifies states by fingerprint alone: distinct
// states with colliding 64-bit fingerprints are treated as identical. The
// set extends that convention to the reserved empty-slot key (fingerprint
// zero is remapped to a fixed constant on the way in).
//
// Snapshot returns a serialisable copy of the set used by the explorer's
// checkpoint files; see the explorer package for the checkpoint/resume
// protocol built on top.
package fpset

import (
	"runtime"
	"sync"
)

// fibonacci multiplier (2^64 / golden ratio) used to spread fingerprints
// across probe slots; fingerprints are already hashes, but their low bits
// also select the shard, so slot selection mixes again and uses high bits.
const fibMix = 0x9E3779B97F4A7C15

// zeroAlias is the key stored in place of fingerprint 0, which is reserved
// as the empty-slot marker. States fingerprinting to 0 and to zeroAlias
// alias each other — the same tolerance the explorer already extends to any
// 64-bit fingerprint collision.
const zeroAlias uint64 = 0x5ab1e0000000001

// minShardCap is the initial per-shard slot count (power of two).
const minShardCap = 1 << 10

// maxLoadNum/maxLoadDen is the occupancy threshold that triggers a shard
// resize: grow when n*den >= cap*num is about to be exceeded (13/16 ≈ 0.81).
const (
	maxLoadNum = 13
	maxLoadDen = 16
)

// Set is a concurrent fingerprint set with per-entry parent/depth edge
// metadata. The zero value is not usable; call New.
//
// Concurrency: Insert and Lookup may be called from any number of
// goroutines. Len, Stats, Range, and Snapshot take all shard locks
// shard-by-shard and are intended for block/level boundaries and
// checkpointing, not hot loops.
type Set struct {
	shards []shard
	mask   uint64 // len(shards)-1
	// spill is the optional out-of-core controller (see spill.go); nil
	// until EnableSpill. When non-nil, entries live either in the shard
	// tables or in one sorted disk run, never both.
	spill *spillState
}

// shard is one independently locked open-addressing table.
type shard struct {
	mu      sync.Mutex
	keys    []uint64 // 0 = empty slot
	meta    []Edge   // parallel to keys
	n       int      // occupied slots
	grow    int      // resize threshold (= cap*13/16)
	probes  int64    // accumulated probe steps, for obs
	resizes int64
	_       [24]byte // pad to keep hot shards off one another's cache lines
}

// Edge is the metadata stored with each fingerprint: the parent state's
// canonical fingerprint and the BFS depth at which the state was first
// discovered — exactly what counterexample reconstruction walks backwards
// (TLC stores the same pair in its fingerprint graph).
type Edge struct {
	Parent uint64
	Depth  int32
}

// Stats is a point-in-time aggregate over all shards, published by the
// explorer into its obs registry at block boundaries.
type Stats struct {
	// Shards is the shard count (fixed at construction).
	Shards int
	// Entries is the number of distinct fingerprints stored.
	Entries int64
	// Slots is the total allocated slot count across shards.
	Slots int64
	// Probes is the cumulative number of probe steps performed by Insert
	// and Lookup (a measure of clustering; Probes/Entries ≈ mean probe
	// sequence length). Counts in-RAM probes only; disk probes are
	// reported separately in DiskProbes.
	Probes int64
	// Resizes counts shard growth events.
	Resizes int64
	// SpilledEntries is the number of entries currently living in on-disk
	// runs (0 unless EnableSpill was called and a spill occurred).
	SpilledEntries int64
	// SpilledShards is the cumulative count of shard-spill events: one per
	// shard that contributed at least one entry to a spill.
	SpilledShards int64
	// SpillEvents counts SpillFrozen calls that moved entries to disk.
	SpillEvents int64
	// SpillRuns is the current on-disk run count.
	SpillRuns int64
	// SpillBytes is the cumulative byte volume written to spill runs
	// (merge rewrites excluded).
	SpillBytes int64
	// SpillMerges counts run-compaction merges.
	SpillMerges int64
	// DiskProbes counts disk block reads performed by the probe path
	// (bloom-filter rejections never reach the disk and are not counted).
	DiskProbes int64
	// DiskHits counts disk probes that found the fingerprint.
	DiskHits int64
}

// DefaultShards picks a shard count for the current machine: the smallest
// power of two ≥ 4×GOMAXPROCS, clamped to [1, 1024]. Oversharding relative
// to the worker count keeps the probability of two workers contending on
// one shard lock low.
func DefaultShards() int {
	n := 4 * runtime.GOMAXPROCS(0)
	s := 1
	for s < n && s < 1024 {
		s <<= 1
	}
	return s
}

// New builds a set with the given shard count, rounded up to a power of
// two; shards <= 0 selects DefaultShards.
func New(shards int) *Set {
	if shards <= 0 {
		shards = DefaultShards()
	}
	p := 1
	for p < shards {
		p <<= 1
	}
	s := &Set{shards: make([]shard, p), mask: uint64(p - 1)}
	for i := range s.shards {
		s.shards[i].init(minShardCap)
	}
	return s
}

func (sh *shard) init(capacity int) {
	sh.keys = make([]uint64, capacity)
	sh.meta = make([]Edge, capacity)
	sh.n = 0
	sh.grow = capacity * maxLoadNum / maxLoadDen
}

// norm remaps the reserved empty-slot key.
func norm(fp uint64) uint64 {
	if fp == 0 {
		return zeroAlias
	}
	return fp
}

// shardFor selects the shard for a fingerprint.
func (s *Set) shardFor(fp uint64) *shard {
	return &s.shards[fp&s.mask]
}

// slotFor returns the starting probe slot for key in a table of size cap
// (power of two): high bits of the Fibonacci-mixed key.
func slotFor(key uint64, capacity int) int {
	return int((key * fibMix) >> 32 & uint64(capacity-1))
}

// Insert records fp as discovered at depth with the given parent
// fingerprint. It reports whether fp was newly inserted. When fp is already
// present, Insert is a deduplication hit: the stored edge is kept, except
// that an equal-depth discovery with a smaller parent fingerprint replaces
// the parent (the deterministic tie-break documented on the package).
func (s *Set) Insert(fp, parent uint64, depth int32) bool {
	key := norm(fp)
	if sp := s.spill; sp != nil {
		// Spilled entries are frozen at a strictly smaller depth, so a
		// disk hit is always a pure dedup hit — no tie-break can apply
		// (see spill.go). The check is lock-free.
		if _, ok := sp.lookup(key); ok {
			return false
		}
	}
	sh := s.shardFor(key)
	sh.mu.Lock()
	i := slotFor(key, len(sh.keys))
	steps := int64(1)
	for {
		k := sh.keys[i]
		if k == 0 {
			// Empty slot: new fingerprint.
			if sh.n+1 > sh.grow {
				sh.rehash()
				// Re-probe in the grown table.
				i = slotFor(key, len(sh.keys))
				for sh.keys[i] != 0 {
					i = (i + 1) & (len(sh.keys) - 1)
					steps++
				}
			}
			sh.keys[i] = key
			sh.meta[i] = Edge{Parent: parent, Depth: depth}
			sh.n++
			sh.probes += steps
			sh.mu.Unlock()
			return true
		}
		if k == key {
			// Duplicate: deterministic equal-depth parent tie-break.
			if m := &sh.meta[i]; m.Depth == depth && parent < m.Parent {
				m.Parent = parent
			}
			sh.probes += steps
			sh.mu.Unlock()
			return false
		}
		i = (i + 1) & (len(sh.keys) - 1)
		steps++
	}
}

// rehash doubles the shard's table. Caller holds sh.mu.
func (sh *shard) rehash() {
	oldKeys, oldMeta := sh.keys, sh.meta
	sh.init(2 * len(oldKeys))
	for j, k := range oldKeys {
		if k == 0 {
			continue
		}
		i := slotFor(k, len(sh.keys))
		for sh.keys[i] != 0 {
			i = (i + 1) & (len(sh.keys) - 1)
		}
		sh.keys[i] = k
		sh.meta[i] = oldMeta[j]
		sh.n++
	}
	sh.resizes++
}

// Lookup returns the edge recorded for fp and whether it is present,
// checking spilled disk runs after a RAM miss.
func (s *Set) Lookup(fp uint64) (Edge, bool) {
	key := norm(fp)
	if e, ok := s.lookupRAM(key); ok {
		return e, true
	}
	if sp := s.spill; sp != nil {
		return sp.lookup(key)
	}
	return Edge{}, false
}

// lookupRAM probes only the in-RAM shard tables.
func (s *Set) lookupRAM(key uint64) (Edge, bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	i := slotFor(key, len(sh.keys))
	steps := int64(1)
	for {
		k := sh.keys[i]
		if k == 0 {
			sh.probes += steps
			sh.mu.Unlock()
			return Edge{}, false
		}
		if k == key {
			m := sh.meta[i]
			sh.probes += steps
			sh.mu.Unlock()
			return m, true
		}
		i = (i + 1) & (len(sh.keys) - 1)
		steps++
	}
}

// Contains reports whether fp is present.
func (s *Set) Contains(fp uint64) bool {
	_, ok := s.Lookup(fp)
	return ok
}

// Len returns the number of distinct fingerprints stored, including entries
// spilled to disk.
func (s *Set) Len() int64 {
	var n int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += int64(sh.n)
		sh.mu.Unlock()
	}
	if sp := s.spill; sp != nil {
		n += sp.spilledEntries.Load()
	}
	return n
}

// Stats aggregates per-shard counters. It locks shards one at a time, so a
// concurrent Insert may or may not be counted — fine for monitoring.
func (s *Set) Stats() Stats {
	st := Stats{Shards: len(s.shards)}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		st.Entries += int64(sh.n)
		st.Slots += int64(len(sh.keys))
		st.Probes += sh.probes
		st.Resizes += sh.resizes
		sh.mu.Unlock()
	}
	if sp := s.spill; sp != nil {
		st.Entries += sp.spilledEntries.Load()
		st.SpilledEntries = sp.spilledEntries.Load()
		st.SpilledShards = sp.shardSpills
		st.SpillEvents = sp.spillEvents
		st.SpillRuns = int64(len(*sp.runs.Load()))
		st.SpillBytes = sp.spillBytes.Load()
		st.SpillMerges = sp.merges
		st.DiskProbes = sp.diskProbes.Load()
		st.DiskHits = sp.diskHits.Load()
	}
	return st
}

// Range calls fn for every stored (fingerprint, edge) pair until fn returns
// false, covering both the in-RAM tables and any spilled disk runs. The
// iteration order is unspecified. Range locks one shard at a time; entries
// inserted concurrently may or may not be visited, and a disk I/O error ends
// the iteration early (use rangeAll inside the package where the error
// matters). The fingerprint passed to fn is the stored key (fingerprint 0 is
// reported as its alias, consistent with Lookup semantics).
func (s *Set) Range(fn func(fp uint64, e Edge) bool) {
	_ = s.rangeAll(fn)
}

// rangeAll is Range with disk errors surfaced; safepoint-only when the set
// has spilled entries.
func (s *Set) rangeAll(fn func(fp uint64, e Edge) bool) error {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for j, k := range sh.keys {
			if k == 0 {
				continue
			}
			if !fn(k, sh.meta[j]) {
				sh.mu.Unlock()
				return nil
			}
		}
		sh.mu.Unlock()
	}
	if sp := s.spill; sp != nil {
		return sp.rangeSpilled(fn)
	}
	return nil
}

// RangeNewer calls fn for every stored entry with Depth > minDepth — the
// entries discovered since the BFS level minDepth completed, which is
// exactly the delta a checkpoint needs to append (edges at depth <= minDepth
// are final once that level is done). Safepoint-only; returns the first disk
// I/O error.
func (s *Set) RangeNewer(minDepth int32, fn func(fp uint64, e Edge) bool) error {
	return s.rangeAll(func(fp uint64, e Edge) bool {
		if e.Depth <= minDepth {
			return true
		}
		return fn(fp, e)
	})
}
