package fpset

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

func TestInsertLookupRoundTrip(t *testing.T) {
	s := New(4)
	rng := rand.New(rand.NewSource(1))
	ref := make(map[uint64]Edge)
	for i := 0; i < 50_000; i++ {
		fp := rng.Uint64()
		e := Edge{Parent: rng.Uint64(), Depth: int32(i % 40)}
		fresh := s.Insert(fp, e.Parent, e.Depth)
		if _, dup := ref[fp]; dup == fresh {
			t.Fatalf("Insert(%#x) fresh=%v but ref dup=%v", fp, fresh, dup)
		}
		if !fresh {
			continue
		}
		ref[fp] = e
	}
	if got, want := s.Len(), int64(len(ref)); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	for fp, want := range ref {
		got, ok := s.Lookup(fp)
		if !ok || got != want {
			t.Fatalf("Lookup(%#x) = %+v,%v want %+v", fp, got, ok, want)
		}
	}
	if _, ok := s.Lookup(0xdeadbeef_feedface); ok {
		t.Fatal("lookup of absent fingerprint succeeded")
	}
}

func TestZeroFingerprintIsStorable(t *testing.T) {
	s := New(1)
	if !s.Insert(0, 7, 3) {
		t.Fatal("first insert of fp 0 not fresh")
	}
	if s.Insert(0, 7, 3) {
		t.Fatal("second insert of fp 0 was fresh")
	}
	e, ok := s.Lookup(0)
	if !ok || e.Parent != 7 || e.Depth != 3 {
		t.Fatalf("Lookup(0) = %+v,%v", e, ok)
	}
}

func TestEqualDepthParentTieBreakIsDeterministic(t *testing.T) {
	// Whatever order the two parents arrive in, the smaller one must win.
	for _, order := range [][2]uint64{{100, 50}, {50, 100}} {
		s := New(2)
		s.Insert(42, order[0], 5)
		s.Insert(42, order[1], 5)
		e, _ := s.Lookup(42)
		if e.Parent != 50 {
			t.Errorf("order %v: parent = %d, want 50", order, e.Parent)
		}
	}
	// A later (deeper) rediscovery must NOT replace the recorded edge: BFS
	// discovers states at minimal depth first.
	s := New(2)
	s.Insert(42, 100, 5)
	s.Insert(42, 1, 6)
	if e, _ := s.Lookup(42); e.Parent != 100 || e.Depth != 5 {
		t.Errorf("deeper rediscovery overwrote edge: %+v", e)
	}
}

func TestGrowthKeepsEntries(t *testing.T) {
	s := New(1) // single shard: force many rehashes
	n := 3 * minShardCap
	for i := 0; i < n; i++ {
		s.Insert(uint64(i*2654435761+1), uint64(i), int32(i%10))
	}
	if got := s.Len(); got != int64(n) {
		t.Fatalf("Len after growth = %d, want %d", got, n)
	}
	st := s.Stats()
	if st.Resizes == 0 {
		t.Fatal("expected at least one resize")
	}
	for i := 0; i < n; i++ {
		if e, ok := s.Lookup(uint64(i*2654435761 + 1)); !ok || e.Parent != uint64(i) {
			t.Fatalf("entry %d lost after rehash (%+v, %v)", i, e, ok)
		}
	}
}

func TestConcurrentInsertExactlyOneWinner(t *testing.T) {
	s := New(8)
	const goroutines = 8
	const n = 20_000
	fresh := make([]int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				// Every goroutine inserts the same fingerprint stream: for
				// each fp exactly one goroutine must observe fresh=true.
				if s.Insert(uint64(i)*0x9E3779B97F4A7C15+1, uint64(g), int32(1)) {
					fresh[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, f := range fresh {
		total += f
	}
	if total != n {
		t.Fatalf("fresh insert total = %d, want %d", total, n)
	}
	if got := s.Len(); got != int64(n) {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	// Equal-depth tie-break: every surviving parent is the minimum (0).
	bad := 0
	s.Range(func(fp uint64, e Edge) bool {
		if e.Parent != 0 {
			bad++
		}
		return true
	})
	if bad != 0 {
		t.Fatalf("%d entries kept a non-minimal parent under contention", bad)
	}
}

func TestRangeVisitsEverything(t *testing.T) {
	s := New(4)
	want := make(map[uint64]bool)
	for i := 1; i <= 1000; i++ {
		fp := uint64(i) * 7919
		s.Insert(fp, 0, 1)
		want[fp] = true
	}
	got := 0
	s.Range(func(fp uint64, e Edge) bool {
		if !want[fp] {
			t.Fatalf("Range yielded unknown fp %#x", fp)
		}
		got++
		return true
	})
	if got != len(want) {
		t.Fatalf("Range visited %d entries, want %d", got, len(want))
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := New(4)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10_000; i++ {
		s.Insert(rng.Uint64(), rng.Uint64(), int32(i%30))
	}
	s.Insert(0, 9, 2) // reserved-key path must survive the round trip

	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Read back with a different shard count: the shard layout is a tuning
	// knob, not serialised state.
	r, err := Read(bytes.NewReader(buf.Bytes()), 16)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != s.Len() {
		t.Fatalf("restored Len = %d, want %d", r.Len(), s.Len())
	}
	mismatch := 0
	s.Range(func(fp uint64, e Edge) bool {
		g, ok := r.Lookup(fp)
		if !ok || g != e {
			mismatch++
		}
		return true
	})
	if mismatch != 0 {
		t.Fatalf("%d entries differ after round trip", mismatch)
	}
	if e, ok := r.Lookup(0); !ok || e.Parent != 9 {
		t.Fatalf("restored Lookup(0) = %+v, %v", e, ok)
	}
}

func TestSnapshotTruncatedFails(t *testing.T) {
	s := New(2)
	for i := 1; i < 100; i++ {
		s.Insert(uint64(i), 0, 1)
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes()[:buf.Len()-5]), 2); err == nil {
		t.Fatal("truncated snapshot read succeeded")
	}
}

func TestStatsAndDefaultShards(t *testing.T) {
	if n := DefaultShards(); n < 1 || n&(n-1) != 0 {
		t.Fatalf("DefaultShards() = %d, want a positive power of two", n)
	}
	s := New(3) // rounds up to 4
	st := s.Stats()
	if st.Shards != 4 {
		t.Fatalf("Shards = %d, want 4", st.Shards)
	}
	s.Insert(1, 0, 0)
	s.Lookup(1)
	st = s.Stats()
	if st.Entries != 1 || st.Probes < 2 || st.Slots == 0 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

func BenchmarkInsert(b *testing.B) {
	s := New(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Insert(uint64(i)*fibMix+1, uint64(i), int32(i&31))
	}
}

func BenchmarkLookupHit(b *testing.B) {
	s := New(0)
	const n = 1 << 20
	for i := 0; i < n; i++ {
		s.Insert(uint64(i)*fibMix+1, 0, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Lookup(uint64(i%n)*fibMix + 1)
	}
}
