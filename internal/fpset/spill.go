package fpset

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
)

// Out-of-core support: when a memory budget is configured the set can move
// "frozen" entries — fingerprints discovered at depths the BFS has already
// completed — out of the in-RAM open-addressing tables into sorted on-disk
// runs, the same discipline TLC uses for its fingerprint set.
//
// Why spilling frozen entries preserves determinism: the only mutation the
// set ever applies to an existing entry is the equal-depth min-parent
// tie-break in Insert, and a tie-break can only fire while the BFS is still
// inserting at that entry's depth. Once level d is complete, every entry
// with Depth <= d is immutable. Spilling exactly those entries means a disk
// record never needs updating: any rediscovery of a spilled fingerprint
// happens at a strictly greater depth and is a pure deduplication hit. The
// final edge table (RAM ∪ disk) is therefore byte-identical to the
// unspilled run's, at every worker count.
//
// An entry lives in exactly one place — the RAM tables or one disk run —
// so the hot probe-and-insert path checks disk first (bloom filter, then a
// sparse block index, then one ReadAt) without taking any shard lock, and
// only then locks the shard for the RAM probe. Runs are only created,
// merged, or scanned at explorer safepoints (block/level boundaries, with
// expansion workers quiesced); concurrent Insert/Lookup see the run list
// through an atomic pointer.

// runMagic identifies a spill run file. Runs are session-private scratch —
// they are recreated from checkpoints after a crash, never recovered — so
// the format carries no version negotiation or trailing checksum.
const runMagic = "SNDTBLR1"

// runHeaderSize is the run file preamble: 8-byte magic + uint64 record count.
const runHeaderSize = 16

// indexEvery is the block-index granularity: one in-RAM index key per this
// many on-disk records, so a point lookup reads one indexEvery-record block.
const indexEvery = 256

// defaultMaxRuns bounds the run list before a compacting merge; more runs
// mean more bloom checks per probe, fewer mean more merge I/O.
const defaultMaxRuns = 8

// SpillConfig configures EnableSpill.
type SpillConfig struct {
	// Dir is the directory for run files; it is created if missing. The
	// caller owns cleanup (runs are scratch, not checkpoints).
	Dir string
	// BudgetBytes is the in-RAM footprint (MemBytes) above which MaybeSpill
	// flushes frozen entries to disk. <= 0 disables MaybeSpill; SpillFrozen
	// still works for explicit calls.
	BudgetBytes int64
	// MaxRuns bounds the on-disk run count before runs are merged into one
	// (<= 0 selects a default).
	MaxRuns int
}

// spillState is the per-set spill controller. The runs pointer is the only
// field touched by the concurrent probe path; everything else mutates at
// safepoints only.
type spillState struct {
	dir     string
	budget  int64
	maxRuns int
	runs    atomic.Pointer[[]*spillRun]
	seq     int // run file name counter

	spilledEntries atomic.Int64
	spillBytes     atomic.Int64
	diskProbes     atomic.Int64
	diskHits       atomic.Int64
	spillEvents    int64 // safepoint-only
	shardSpills    int64 // safepoint-only
	merges         int64 // safepoint-only
}

// spillRun is one immutable sorted run on disk.
type spillRun struct {
	f      *os.File
	path   string
	count  int64
	bytes  int64
	minKey uint64
	maxKey uint64
	index  []uint64 // first key of each indexEvery-record block
	filter bloom
}

// record pairs a key with its edge while sorting a run.
type record struct {
	key uint64
	e   Edge
}

// bloom is a fixed-size blocked-free bloom filter over run keys; it keeps
// most absent-key probes off the disk entirely.
type bloom struct {
	words []uint64
	mask  uint64 // bit-count-1 (bit count is a power of two)
}

func newBloom(n int64) bloom {
	bits := int64(1 << 13)
	for bits < n*10 {
		bits <<= 1
	}
	return bloom{words: make([]uint64, bits/64), mask: uint64(bits - 1)}
}

// bloomHashes derives the two probe strides for a key. The second multiplier
// is the 64-bit xxhash avalanche prime; |1 keeps the stride odd.
func bloomHashes(key uint64) (h1, h2 uint64) {
	return key * fibMix, key*0xC2B2AE3D27D4EB4F | 1
}

const bloomProbes = 4

func (b bloom) add(key uint64) {
	h1, h2 := bloomHashes(key)
	for i := uint64(0); i < bloomProbes; i++ {
		p := (h1 + i*h2) & b.mask
		b.words[p>>6] |= 1 << (p & 63)
	}
}

func (b bloom) mightContain(key uint64) bool {
	h1, h2 := bloomHashes(key)
	for i := uint64(0); i < bloomProbes; i++ {
		p := (h1 + i*h2) & b.mask
		if b.words[p>>6]&(1<<(p&63)) == 0 {
			return false
		}
	}
	return true
}

// ramBytes is the in-RAM overhead a run keeps resident (index + bloom).
func (r *spillRun) ramBytes() int64 {
	return int64(len(r.index))*8 + int64(len(r.filter.words))*8
}

// EnableSpill attaches a spill controller to the set. It must be called
// before the set is shared between goroutines; calling it twice or on a set
// that already holds spilled entries is an error.
func (s *Set) EnableSpill(cfg SpillConfig) error {
	if s.spill != nil {
		return errors.New("fpset: spill already enabled")
	}
	if cfg.Dir == "" {
		return errors.New("fpset: spill dir required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return fmt.Errorf("fpset: spill dir: %w", err)
	}
	if cfg.MaxRuns <= 0 {
		cfg.MaxRuns = defaultMaxRuns
	}
	sp := &spillState{dir: cfg.Dir, budget: cfg.BudgetBytes, maxRuns: cfg.MaxRuns}
	empty := []*spillRun{}
	sp.runs.Store(&empty)
	s.spill = sp
	return nil
}

// CloseSpill closes every run file handle. Run files themselves are left on
// disk for the owner of SpillConfig.Dir to remove. Must be called with no
// concurrent set operations.
func (s *Set) CloseSpill() {
	sp := s.spill
	if sp == nil {
		return
	}
	for _, r := range *sp.runs.Load() {
		r.f.Close()
	}
	empty := []*spillRun{}
	sp.runs.Store(&empty)
}

// MemBytes estimates the set's resident footprint: allocated table slots
// (key + edge) plus the per-run index and bloom structures. It locks shards
// one at a time; call it at block/level boundaries, not hot loops.
func (s *Set) MemBytes() int64 {
	var slots int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		slots += int64(len(sh.keys))
		sh.mu.Unlock()
	}
	// 8 bytes of key + 16 bytes of Edge (padded) per slot.
	b := slots * 24
	if sp := s.spill; sp != nil {
		for _, r := range *sp.runs.Load() {
			b += r.ramBytes()
		}
	}
	return b
}

// MaybeSpill spills frozen entries (Depth <= maxDepth) to disk when the
// configured budget is exceeded, merging runs if the run list has grown past
// its bound. It returns the number of entries moved (0 when under budget or
// nothing is frozen). Caller must be at a safepoint: no concurrent Insert,
// Lookup, Range, or snapshot.
func (s *Set) MaybeSpill(maxDepth int32) (int, error) {
	sp := s.spill
	if sp == nil || sp.budget <= 0 || s.MemBytes() <= sp.budget {
		return 0, nil
	}
	return s.SpillFrozen(maxDepth)
}

// SpillFrozen unconditionally moves every in-RAM entry with Depth <=
// maxDepth into a new sorted on-disk run and shrinks the shard tables to fit
// what remains. See the package comment on spill.go for why only frozen
// depths may move. Caller must be at a safepoint.
func (s *Set) SpillFrozen(maxDepth int32) (int, error) {
	sp := s.spill
	if sp == nil {
		return 0, errors.New("fpset: spill not enabled")
	}
	// Pass 1: collect frozen entries without touching the tables, so a
	// failed run write loses nothing.
	var recs []record
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for j, k := range sh.keys {
			if k != 0 && sh.meta[j].Depth <= maxDepth {
				recs = append(recs, record{key: k, e: sh.meta[j]})
			}
		}
		sh.mu.Unlock()
	}
	if len(recs) == 0 {
		return 0, nil
	}
	slices.SortFunc(recs, func(a, b record) int {
		switch {
		case a.key < b.key:
			return -1
		case a.key > b.key:
			return 1
		}
		return 0
	})
	run, err := sp.writeRun(recs)
	if err != nil {
		return 0, err
	}
	// Pass 2: the run is durable; drop the spilled entries from RAM and
	// shrink each touched shard's table to the smallest power of two that
	// holds the remainder under the load factor.
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		moved := 0
		for j, k := range sh.keys {
			if k != 0 && sh.meta[j].Depth <= maxDepth {
				moved++
			}
		}
		if moved == 0 {
			sh.mu.Unlock()
			continue
		}
		sp.shardSpills++
		remaining := sh.n - moved
		capacity := minShardCap
		for capacity*maxLoadNum/maxLoadDen <= remaining {
			capacity <<= 1
		}
		oldKeys, oldMeta := sh.keys, sh.meta
		resizes, probes := sh.resizes, sh.probes
		sh.init(capacity)
		sh.resizes, sh.probes = resizes, probes
		for j, k := range oldKeys {
			if k == 0 || oldMeta[j].Depth <= maxDepth {
				continue
			}
			slot := slotFor(k, len(sh.keys))
			for sh.keys[slot] != 0 {
				slot = (slot + 1) & (len(sh.keys) - 1)
			}
			sh.keys[slot] = k
			sh.meta[slot] = oldMeta[j]
			sh.n++
		}
		sh.mu.Unlock()
	}
	sp.spillEvents++
	sp.spilledEntries.Add(int64(len(recs)))
	sp.spillBytes.Add(run.bytes)
	runs := append(slices.Clone(*sp.runs.Load()), run)
	sp.runs.Store(&runs)
	if len(runs) > sp.maxRuns {
		if err := sp.mergeRuns(); err != nil {
			return len(recs), err
		}
	}
	return len(recs), nil
}

// writeRun streams sorted records into a new run file and builds its in-RAM
// probe structures. The file handle stays open for ReadAt lookups.
func (sp *spillState) writeRun(recs []record) (*spillRun, error) {
	sp.seq++
	path := filepath.Join(sp.dir, fmt.Sprintf("run-%06d.fps", sp.seq))
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	run := &spillRun{
		f: f, path: path,
		count:  int64(len(recs)),
		minKey: recs[0].key, maxKey: recs[len(recs)-1].key,
		filter: newBloom(int64(len(recs))),
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	var hdr [runHeaderSize]byte
	copy(hdr[:8], runMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(recs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	var buf [recordSize]byte
	for i, rec := range recs {
		if i%indexEvery == 0 {
			run.index = append(run.index, rec.key)
		}
		run.filter.add(rec.key)
		binary.LittleEndian.PutUint64(buf[0:8], rec.key)
		binary.LittleEndian.PutUint64(buf[8:16], rec.e.Parent)
		binary.LittleEndian.PutUint32(buf[16:20], uint32(rec.e.Depth))
		if _, err := bw.Write(buf[:]); err != nil {
			f.Close()
			os.Remove(path)
			return nil, err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	run.bytes = runHeaderSize + run.count*recordSize
	return run, nil
}

// lookup probes the disk runs for key. It is lock-free: the run list is
// immutable once published and run files are immutable once written.
func (sp *spillState) lookup(key uint64) (Edge, bool) {
	for _, r := range *sp.runs.Load() {
		if key < r.minKey || key > r.maxKey || !r.filter.mightContain(key) {
			continue
		}
		sp.diskProbes.Add(1)
		if e, ok := r.find(key); ok {
			sp.diskHits.Add(1)
			return e, true
		}
	}
	return Edge{}, false
}

// blockBufPool recycles the fixed-size block buffers disk probes read into.
var blockBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, indexEvery*recordSize)
		return &b
	},
}

// find locates key in one run: binary-search the sparse index for the block,
// read it with one ReadAt, binary-search the block.
func (r *spillRun) find(key uint64) (Edge, bool) {
	// First index entry > key; the record (if present) is in block i-1.
	i := sort.Search(len(r.index), func(i int) bool { return r.index[i] > key })
	if i == 0 {
		return Edge{}, false
	}
	block := int64(i - 1)
	lo := block * indexEvery
	hi := min(lo+indexEvery, r.count)
	bufp := blockBufPool.Get().(*[]byte)
	defer blockBufPool.Put(bufp)
	buf := (*bufp)[:int(hi-lo)*recordSize]
	if _, err := r.f.ReadAt(buf, runHeaderSize+lo*recordSize); err != nil {
		return Edge{}, false
	}
	n := int(hi - lo)
	j := sort.Search(n, func(j int) bool {
		return binary.LittleEndian.Uint64(buf[j*recordSize:]) >= key
	})
	if j == n || binary.LittleEndian.Uint64(buf[j*recordSize:]) != key {
		return Edge{}, false
	}
	rec := buf[j*recordSize:]
	return Edge{
		Parent: binary.LittleEndian.Uint64(rec[8:16]),
		Depth:  int32(binary.LittleEndian.Uint32(rec[16:20])),
	}, true
}

// scan streams every record of the run in key order. Used by Range and the
// checkpoint writer; safepoint-only (shares the file offset via ReadAt-free
// sequential reads on a private descriptor).
func (r *spillRun) scan(fn func(key uint64, e Edge) bool) error {
	f, err := os.Open(r.path)
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	if _, err := br.Discard(runHeaderSize); err != nil {
		return err
	}
	var buf [recordSize]byte
	for i := int64(0); i < r.count; i++ {
		if _, err := readFull(br, buf[:]); err != nil {
			return fmt.Errorf("fpset: run %s record %d/%d: %w", r.path, i, r.count, err)
		}
		e := Edge{
			Parent: binary.LittleEndian.Uint64(buf[8:16]),
			Depth:  int32(binary.LittleEndian.Uint32(buf[16:20])),
		}
		if !fn(binary.LittleEndian.Uint64(buf[0:8]), e) {
			return nil
		}
	}
	return nil
}

// readFull is io.ReadFull without importing io here.
func readFull(br *bufio.Reader, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := br.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// mergeRuns streams every run into one new sorted run (keys across runs are
// disjoint, so this is a pure k-way merge) and retires the old files.
// Safepoint-only.
func (sp *spillState) mergeRuns() error {
	old := *sp.runs.Load()
	if len(old) <= 1 {
		return nil
	}
	var total int64
	for _, r := range old {
		total += r.count
	}
	sp.seq++
	path := filepath.Join(sp.dir, fmt.Sprintf("run-%06d.fps", sp.seq))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	merged := &spillRun{f: f, path: path, count: total, filter: newBloom(total)}
	bw := bufio.NewWriterSize(f, 1<<16)
	var hdr [runHeaderSize]byte
	copy(hdr[:8], runMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(total))
	fail := func(err error) error {
		f.Close()
		os.Remove(path)
		return err
	}
	if _, err := bw.Write(hdr[:]); err != nil {
		return fail(err)
	}
	srcs := make([]*runCursor, 0, len(old))
	for _, r := range old {
		c, err := newRunCursor(r)
		if err != nil {
			return fail(err)
		}
		defer c.close()
		srcs = append(srcs, c)
	}
	var buf [recordSize]byte
	written := int64(0)
	for {
		best := -1
		for i, c := range srcs {
			if !c.ok {
				continue
			}
			if best == -1 || c.key < srcs[best].key {
				best = i
			}
		}
		if best == -1 {
			break
		}
		c := srcs[best]
		if written%indexEvery == 0 {
			merged.index = append(merged.index, c.key)
		}
		if written == 0 {
			merged.minKey = c.key
		}
		merged.maxKey = c.key
		merged.filter.add(c.key)
		binary.LittleEndian.PutUint64(buf[0:8], c.key)
		binary.LittleEndian.PutUint64(buf[8:16], c.e.Parent)
		binary.LittleEndian.PutUint32(buf[16:20], uint32(c.e.Depth))
		if _, err := bw.Write(buf[:]); err != nil {
			return fail(err)
		}
		written++
		if err := c.advance(); err != nil {
			return fail(err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if written != total {
		return fail(fmt.Errorf("fpset: merge wrote %d of %d records", written, total))
	}
	merged.bytes = runHeaderSize + total*recordSize
	runs := []*spillRun{merged}
	sp.runs.Store(&runs)
	sp.merges++
	for _, r := range old {
		r.f.Close()
		os.Remove(r.path)
	}
	return nil
}

// runCursor streams one run during a merge.
type runCursor struct {
	f    *os.File
	br   *bufio.Reader
	left int64
	key  uint64
	e    Edge
	ok   bool
}

func newRunCursor(r *spillRun) (*runCursor, error) {
	f, err := os.Open(r.path)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(f, 1<<16)
	if _, err := br.Discard(runHeaderSize); err != nil {
		f.Close()
		return nil, err
	}
	c := &runCursor{f: f, br: br, left: r.count}
	if err := c.advance(); err != nil {
		f.Close()
		return nil, err
	}
	return c, nil
}

func (c *runCursor) close() { c.f.Close() }

func (c *runCursor) advance() error {
	if c.left == 0 {
		c.ok = false
		return nil
	}
	var buf [recordSize]byte
	if _, err := readFull(c.br, buf[:]); err != nil {
		return err
	}
	c.left--
	c.key = binary.LittleEndian.Uint64(buf[0:8])
	c.e = Edge{
		Parent: binary.LittleEndian.Uint64(buf[8:16]),
		Depth:  int32(binary.LittleEndian.Uint32(buf[16:20])),
	}
	c.ok = true
	return nil
}

// rangeSpilled iterates every spilled record across runs (unspecified
// inter-run order). Safepoint-only.
func (sp *spillState) rangeSpilled(fn func(key uint64, e Edge) bool) error {
	stop := false
	for _, r := range *sp.runs.Load() {
		if stop {
			return nil
		}
		err := r.scan(func(key uint64, e Edge) bool {
			if !fn(key, e) {
				stop = true
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}
