package obs

import (
	"fmt"
)

// Artifact schema versioning. Two artifact families leave a run:
//
//   - the JSONL event stream written by Tracer (-trace-out): one Event per
//     line, each stamped with the schema version in its "v" field;
//   - the metrics snapshot JSON written at exit (-metrics-out): the flat
//     registry snapshot plus "schema", "result", and "cover" objects.
//
// The version policy mirrors the checkpoint format's: a bump is
// backwards-incompatible by design. Tooling (scripts/checktrace, `sandtable
// report`) refuses records carrying a version it does not read rather than
// guessing; additive changes (new detail keys, new metric names) do NOT
// bump the version — only renaming/removing fields or changing their
// meaning does.
const (
	// TraceSchemaVersion is stamped into every emitted Event's V field.
	TraceSchemaVersion = 1
	// MetricsSchemaVersion is recorded under the "schema" key of metrics
	// snapshots and inside Cover profiles.
	MetricsSchemaVersion = 1
)

// KnownLayers enumerates the subsystems that emit trace events. The
// checktrace validator treats an unknown layer as a schema violation, so a
// new emitting layer must be added here (that is an additive change, not a
// version bump).
var KnownLayers = map[string]bool{
	"spec":        true,
	"engine":      true,
	"vnet":        true,
	"replay":      true,
	"conformance": true,
	"shrink":      true,
	"obs":         true,
}

// ValidateEvent checks one decoded trace event against the versioned
// schema: a version this build reads, a known layer, a non-empty kind, and
// a positive sequence number. It is the single source of truth shared by
// the checktrace CI validator and the unit tests.
func ValidateEvent(e Event) error {
	if e.V != TraceSchemaVersion {
		return fmt.Errorf("obs: event seq %d: schema version %d, this build reads %d", e.Seq, e.V, TraceSchemaVersion)
	}
	if e.Seq <= 0 {
		return fmt.Errorf("obs: event has non-positive seq %d", e.Seq)
	}
	if !KnownLayers[e.Layer] {
		return fmt.Errorf("obs: event seq %d: unknown layer %q", e.Seq, e.Layer)
	}
	if e.Kind == "" {
		return fmt.Errorf("obs: event seq %d (layer %s): empty kind", e.Seq, e.Layer)
	}
	if e.Node < -1 {
		return fmt.Errorf("obs: event seq %d: node %d out of range", e.Seq, e.Node)
	}
	return nil
}

// ValidateMetrics checks a decoded metrics snapshot (the -metrics-out JSON)
// against the schema: a version this build reads and numeric values for
// every flat metric key ("result" and "cover" are structured sub-objects
// and are exempt).
func ValidateMetrics(snap map[string]any) error {
	v, ok := snap["schema"]
	if !ok {
		return fmt.Errorf("obs: metrics snapshot has no schema version")
	}
	ver, ok := v.(float64) // encoding/json decodes numbers as float64
	if !ok || int(ver) != MetricsSchemaVersion {
		return fmt.Errorf("obs: metrics snapshot schema version %v, this build reads %d", v, MetricsSchemaVersion)
	}
	for key, val := range snap {
		switch key {
		case "schema", "result", "cover":
			continue
		}
		switch val.(type) {
		case float64, int64, int:
		default:
			return fmt.Errorf("obs: metrics key %q has non-numeric value %T", key, val)
		}
	}
	return nil
}
