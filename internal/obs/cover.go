package obs

import (
	"sort"
)

// This file implements the state-space coverage profiler: per-action and
// per-depth accounting for a checking run, the reproduction's analogue of
// TLC's action-coverage reporting ("action X fired N times, yielding M
// distinct states"). The data answers the question a bare progress line
// cannot: is a long run still discovering new behaviour, and which parts of
// the specification is it exercising?
//
// Collection is two-phase so the explorer's allocation-lean expansion
// pipeline keeps its wins: each expansion worker owns a private WorkerCover
// it updates lock-free on the hot path, and the serial merge loop folds
// every worker's deltas into the run-level Cover at block/level barriers —
// the same places counters and fresh states are already drained, so the
// profiler adds no synchronisation of its own.

// ActionStats accumulates coverage for one specification action.
type ActionStats struct {
	// Fired counts successors this action generated (in BFS every enabled
	// action fires; in simulation only the chosen action per step does).
	Fired int64 `json:"fired"`
	// Fresh counts fired transitions that produced a previously unseen
	// distinct state — the action's contribution to coverage. In simulation
	// mode it is populated only when distinct-state tracking is on.
	Fresh int64 `json:"fresh"`
	// FirstDepth is the shallowest depth at which the action fired
	// (-1 until it fires).
	FirstDepth int `json:"first_depth"`
	// LastFreshDepth is the deepest level at which the action still yielded
	// a new distinct state (-1 if it never did) — when it is far behind the
	// current depth the action has saturated.
	LastFreshDepth int `json:"last_fresh_depth"`
}

// Yield is the fraction of the action's fired transitions that discovered a
// new distinct state.
func (a *ActionStats) Yield() float64 {
	if a.Fired == 0 {
		return 0
	}
	return float64(a.Fresh) / float64(a.Fired)
}

// LevelStats profiles one completed BFS level (or, in simulation mode, one
// batch of walks).
type LevelStats struct {
	Depth int `json:"depth"`
	// Frontier is the number of states that entered the level for
	// expansion.
	Frontier int `json:"frontier"`
	// Fresh is the number of new distinct states discovered by the level.
	Fresh int `json:"fresh"`
	// Transitions is the number of successors the level generated.
	Transitions int64 `json:"transitions"`
	// Dedup is the number of those successors discarded as already seen.
	Dedup int64 `json:"dedup"`
	// Violations counts invariant violations found at this level.
	Violations int `json:"violations"`
	// FpsetProbes is the fingerprint-set probe count the level consumed
	// (insert/lookup slot inspections), the dedup cost driver.
	FpsetProbes int64 `json:"fpset_probes"`
	// Checkpoint records whether a snapshot was written at this level
	// boundary.
	Checkpoint bool `json:"checkpoint,omitempty"`
}

// DedupRatio is the fraction of the level's successors that were duplicates.
func (l *LevelStats) DedupRatio() float64 {
	if l.Transitions == 0 {
		return 0
	}
	return float64(l.Dedup) / float64(l.Transitions)
}

// Cover is the run-level coverage profile. It is built by the serial merge
// loop of a run (never concurrently) and read after the run ends; the JSON
// form is embedded in -metrics-out artifacts under the "cover" key and read
// back by `sandtable report`.
type Cover struct {
	// Schema is the artifact schema version (MetricsSchemaVersion).
	Schema int `json:"schema"`
	// Mode records how the profile was collected: "bfs", "simulate".
	Mode string `json:"mode,omitempty"`
	// Declared is the specification's full action vocabulary when the
	// machine declares one (spec.ActionLister); never-fired detection needs
	// it. Empty when the machine does not declare its actions.
	Declared []string `json:"declared,omitempty"`
	// Actions maps action name to its coverage stats.
	Actions map[string]*ActionStats `json:"actions"`
	// Levels holds one profile per completed BFS level, in depth order
	// (index 0 is the initial-state level at depth 0).
	Levels []LevelStats `json:"levels,omitempty"`
	// SymmetryHits counts successors whose canonical fingerprint differed
	// from their plain fingerprint — states identified with a smaller
	// permutation, the work symmetry reduction saves.
	SymmetryHits int64 `json:"symmetry_hits,omitempty"`
	// ResumedAtDepth is the depth a resumed run continued from (0 for
	// fresh runs); a resumed session profiles only its own levels.
	ResumedAtDepth int `json:"resumed_at_depth,omitempty"`
}

// NewCover builds an empty profile for the given collection mode and
// declared action vocabulary (may be nil).
func NewCover(mode string, declared []string) *Cover {
	c := &Cover{Schema: MetricsSchemaVersion, Mode: mode, Actions: make(map[string]*ActionStats)}
	if len(declared) > 0 {
		c.Declared = append([]string(nil), declared...)
		sort.Strings(c.Declared)
	}
	return c
}

// action returns the stats cell for name, creating it on first use.
func (c *Cover) action(name string) *ActionStats {
	a := c.Actions[name]
	if a == nil {
		a = &ActionStats{FirstDepth: -1, LastFreshDepth: -1}
		c.Actions[name] = a
	}
	return a
}

// Observe records one fired transition directly on the run-level profile —
// the serial-collection entry point used by simulation walks. Concurrent
// collectors must go through WorkerCover instead. No-op on a nil Cover.
func (c *Cover) Observe(name string, depth int, fresh bool) {
	if c == nil {
		return
	}
	a := c.action(name)
	a.Fired++
	if a.FirstDepth < 0 || depth < a.FirstDepth {
		a.FirstDepth = depth
	}
	if fresh {
		a.Fresh++
		if depth > a.LastFreshDepth {
			a.LastFreshDepth = depth
		}
	}
}

// ActionNames returns the union of declared and fired action names, sorted.
func (c *Cover) ActionNames() []string {
	if c == nil {
		return nil
	}
	seen := make(map[string]bool, len(c.Actions)+len(c.Declared))
	var names []string
	for _, n := range c.Declared {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	for n := range c.Actions {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// NeverFired returns the declared actions that never fired, sorted — the
// headline flag of the coverage report: a never-fired action means either
// the budget never enables it or the spec (or its declared vocabulary) is
// wrong, exactly the drift coverage reports catch in practice.
func (c *Cover) NeverFired() []string {
	if c == nil {
		return nil
	}
	var out []string
	for _, n := range c.Declared {
		if a, ok := c.Actions[n]; !ok || a.Fired == 0 {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// ZeroYield returns fired actions that never produced a fresh distinct
// state, sorted — enabled-but-saturated actions whose every successor was a
// duplicate.
func (c *Cover) ZeroYield() []string {
	if c == nil {
		return nil
	}
	var out []string
	for n, a := range c.Actions {
		if a.Fired > 0 && a.Fresh == 0 {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// TotalFired sums fired transitions across actions.
func (c *Cover) TotalFired() int64 {
	if c == nil {
		return 0
	}
	var t int64
	for _, a := range c.Actions {
		t += a.Fired
	}
	return t
}

// MergeWorker folds one worker's accumulated deltas into the run-level
// profile and resets the worker for its next block. Call only from the
// serial merge loop (the explorer's block drain). Nil-safe on both sides.
func (c *Cover) MergeWorker(w *WorkerCover) {
	if c == nil || w == nil {
		return
	}
	c.SymmetryHits += w.symHits
	w.symHits = 0
	for name, wa := range w.actions {
		if wa.Fired == 0 {
			continue
		}
		a := c.action(name)
		a.Fired += wa.Fired
		a.Fresh += wa.Fresh
		if wa.FirstDepth >= 0 && (a.FirstDepth < 0 || wa.FirstDepth < a.FirstDepth) {
			a.FirstDepth = wa.FirstDepth
		}
		if wa.LastFreshDepth > a.LastFreshDepth {
			a.LastFreshDepth = wa.LastFreshDepth
		}
		// Reset in place: the cell (and the map entry) is reused next
		// block, so steady-state merging allocates nothing.
		wa.Fired, wa.Fresh, wa.FirstDepth, wa.LastFreshDepth = 0, 0, -1, -1
	}
}

// Merge folds another run-level profile into c — the cross-peer aggregation
// step of a distributed run, where every peer profiles its own share of the
// state space and the final barrier sums the shares. Per-depth level rows are
// matched by depth and their counters added; action cells sum Fired/Fresh,
// take the earliest FirstDepth and the deepest LastFreshDepth. Call only
// after both profiles are quiescent. Nil-safe on both sides.
func (c *Cover) Merge(o *Cover) {
	if c == nil || o == nil {
		return
	}
	c.SymmetryHits += o.SymmetryHits
	for name, oa := range o.Actions {
		if oa.Fired == 0 {
			continue
		}
		a := c.action(name)
		a.Fired += oa.Fired
		a.Fresh += oa.Fresh
		if oa.FirstDepth >= 0 && (a.FirstDepth < 0 || oa.FirstDepth < a.FirstDepth) {
			a.FirstDepth = oa.FirstDepth
		}
		if oa.LastFreshDepth > a.LastFreshDepth {
			a.LastFreshDepth = oa.LastFreshDepth
		}
	}
	byDepth := make(map[int]int, len(c.Levels))
	for i := range c.Levels {
		byDepth[c.Levels[i].Depth] = i
	}
	for _, ol := range o.Levels {
		i, ok := byDepth[ol.Depth]
		if !ok {
			byDepth[ol.Depth] = len(c.Levels)
			c.Levels = append(c.Levels, ol)
			continue
		}
		l := &c.Levels[i]
		l.Frontier += ol.Frontier
		l.Fresh += ol.Fresh
		l.Transitions += ol.Transitions
		l.Dedup += ol.Dedup
		l.Violations += ol.Violations
		l.FpsetProbes += ol.FpsetProbes
		l.Checkpoint = l.Checkpoint || ol.Checkpoint
	}
	sort.Slice(c.Levels, func(i, j int) bool { return c.Levels[i].Depth < c.Levels[j].Depth })
}

// WorkerCover is one expansion worker's private coverage accumulator. All
// methods are single-goroutine (the owning worker between barriers, the
// merge loop at barriers); no atomics are needed because the explorer's
// block drain is already a synchronisation point. A nil *WorkerCover
// accepts every call as a no-op, so expansion code records unconditionally.
type WorkerCover struct {
	actions map[string]*ActionStats
	// One-entry cache: successor enumeration emits runs of the same action
	// name (a spec enumerates per action kind in order), so most lookups
	// hit the cached cell without touching the map.
	lastName string
	last     *ActionStats
	symHits  int64
}

// NewWorkerCover builds an empty worker-local accumulator.
func NewWorkerCover() *WorkerCover {
	return &WorkerCover{actions: make(map[string]*ActionStats)}
}

// Observe records one fired transition at the given depth; fresh marks a
// newly discovered distinct state.
func (w *WorkerCover) Observe(name string, depth int, fresh bool) {
	if w == nil {
		return
	}
	a := w.last
	if a == nil || w.lastName != name {
		a = w.actions[name]
		if a == nil {
			a = &ActionStats{FirstDepth: -1, LastFreshDepth: -1}
			w.actions[name] = a
		}
		w.lastName, w.last = name, a
	}
	a.Fired++
	if a.FirstDepth < 0 || depth < a.FirstDepth {
		a.FirstDepth = depth
	}
	if fresh {
		a.Fresh++
		if depth > a.LastFreshDepth {
			a.LastFreshDepth = depth
		}
	}
}

// SymmetryHit records one successor whose canonical fingerprint differed
// from its plain fingerprint.
func (w *WorkerCover) SymmetryHit() {
	if w == nil {
		return
	}
	w.symHits++
}
