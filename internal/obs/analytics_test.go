package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestReporterEWMAAndETA drives the analytics with a virtual clock and
// hand-computable deltas: the smoothed throughput and the dedup-curve ETA
// must come out at exact fixed points.
func TestReporterEWMAAndETA(t *testing.T) {
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	var got []Progress
	r := NewReporterClock(func(p Progress) { got = append(got, p) }, time.Second, 0, now)

	// Window 1: 1000 fresh states, queue grows 0 -> 500 over 10s.
	// expanded = 1000 - 500 = 500, m = 2 (space still growing): no ETA.
	clock = clock.Add(10 * time.Second)
	r.Emit(Progress{DistinctStates: 1000, QueueLen: 500, Transitions: 2000, DedupHits: 500, Depth: 3})
	if got[0].StatesPerSec != 100 {
		t.Fatalf("window rate = %v, want 100", got[0].StatesPerSec)
	}
	if got[0].StatesPerSecEWMA != 100 {
		t.Fatalf("first ewma = %v, want seeded to 100", got[0].StatesPerSecEWMA)
	}
	if got[0].ETA != 0 {
		t.Fatalf("growing space must have no ETA, got %v", got[0].ETA)
	}

	// Window 2: 500 fresh, queue shrinks 500 -> 250 over 10s.
	// expanded = 500 + 250 = 750, m = 2/3, remaining = 250/(1/3) = 750
	// expansions at 75/s: ETA exactly 10s. EWMA = 0.3*50 + 0.7*100 = 85.
	clock = clock.Add(10 * time.Second)
	r.Emit(Progress{DistinctStates: 1500, QueueLen: 250, Transitions: 5000, DedupHits: 3000, Depth: 5})
	if got[1].StatesPerSec != 50 {
		t.Fatalf("window rate = %v, want 50", got[1].StatesPerSec)
	}
	if got[1].StatesPerSecEWMA != 85 {
		t.Fatalf("ewma = %v, want 85", got[1].StatesPerSecEWMA)
	}
	if got[1].ETA != 10*time.Second {
		t.Fatalf("ETA = %v, want 10s", got[1].ETA)
	}

	// The rendered line carries the analytics deterministically.
	line := got[1].String()
	for _, want := range []string{"~85 states/s avg", "ETA 10s"} {
		if !strings.Contains(line, want) {
			t.Fatalf("line %q missing %q", line, want)
		}
	}

	// Final reports drop ETA (the run is over) but keep the smoothed rate.
	clock = clock.Add(10 * time.Second)
	r.Emit(Progress{DistinctStates: 2250, QueueLen: 0, Final: true})
	if got[2].ETA != 0 {
		t.Fatalf("final report carries ETA %v", got[2].ETA)
	}
	if strings.Contains(got[2].String(), "ETA") || strings.Contains(got[2].String(), "avg") {
		t.Fatalf("final line renders analytics: %q", got[2].String())
	}
}

// TestReporterStallOncePerPlateau checks the stall edge: after StallAfter
// consecutive zero-progress reports the warning fires exactly once, stays
// silent for the rest of the plateau, resets on progress, and fires once
// again on the next plateau. Each plateau also emits exactly one trace
// event.
func TestReporterStallOncePerPlateau(t *testing.T) {
	clock := time.Unix(0, 0)
	now := func() time.Time { return clock }
	var got []Progress
	var traceBuf bytes.Buffer
	tracer := NewTracer(&traceBuf)
	r := NewReporterClock(func(p Progress) { got = append(got, p) }, time.Second, 0, now)
	r.StallAfter = 2
	r.Tracer = tracer

	emit := func(distinct int) {
		clock = clock.Add(time.Second)
		if !r.Maybe(Progress{DistinctStates: distinct, QueueLen: 10}) {
			t.Fatalf("cadence not due at distinct=%d", distinct)
		}
	}

	emit(100) // progress
	emit(100) // zero run 1
	emit(100) // zero run 2 -> stalled, warning
	emit(100) // still stalled, no second warning
	emit(150) // plateau ends
	emit(150) // zero run 1
	emit(150) // zero run 2 -> second plateau, warning again

	wantStalled := []bool{false, false, true, true, false, false, true}
	wantWarn := []bool{false, false, true, false, false, false, true}
	for i := range got {
		if got[i].Stalled != wantStalled[i] || got[i].StallWarning != wantWarn[i] {
			t.Fatalf("report %d: stalled=%v warn=%v, want %v/%v",
				i, got[i].Stalled, got[i].StallWarning, wantStalled[i], wantWarn[i])
		}
	}
	if !strings.Contains(got[2].String(), "[stalled]") {
		t.Fatalf("stalled line missing marker: %q", got[2].String())
	}

	if err := tracer.Flush(); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadEvents(bytes.NewReader(traceBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("stall trace events = %d, want 2 (one per plateau)", len(evs))
	}
	for _, e := range evs {
		if e.Layer != "obs" || e.Kind != "stall" {
			t.Fatalf("unexpected stall event %+v", e)
		}
		if err := ValidateEvent(e); err != nil {
			t.Fatalf("stall event fails schema: %v", err)
		}
	}
}

// TestPrintProgressStallWarning: the stderr printer emits a warning line on
// the stall edge and only there.
func TestPrintProgressStallWarning(t *testing.T) {
	var buf bytes.Buffer
	fn := PrintProgress(&buf)
	fn(Progress{DistinctStates: 10})
	if strings.Contains(buf.String(), "warning:") {
		t.Fatal("warning printed without stall edge")
	}
	fn(Progress{DistinctStates: 10, Stalled: true, StallWarning: true})
	if !strings.Contains(buf.String(), "warning: no new distinct states") {
		t.Fatalf("missing stall warning:\n%s", buf.String())
	}
}

// TestReporterStallDisabled: StallAfter < 0 switches detection off.
func TestReporterStallDisabled(t *testing.T) {
	clock := time.Unix(0, 0)
	now := func() time.Time { return clock }
	var got []Progress
	r := NewReporterClock(func(p Progress) { got = append(got, p) }, time.Second, 0, now)
	r.StallAfter = -1
	for i := 0; i < 6; i++ {
		clock = clock.Add(time.Second)
		r.Emit(Progress{DistinctStates: 42})
	}
	for i, p := range got {
		if p.Stalled || p.StallWarning {
			t.Fatalf("report %d stalled with detection disabled", i)
		}
	}
}

// TestHistogramQuantiles pins the interpolation arithmetic on hand-built
// bucket contents.
func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	// 100 observations in (0,10].
	for i := 0; i < 100; i++ {
		h.Observe(5)
	}
	if got := h.Quantile(0.50); got != 5 {
		t.Fatalf("p50 = %v, want 5 (midpoint of first bucket)", got)
	}
	if got := h.Quantile(0.99); got != 9.9 {
		t.Fatalf("p99 = %v, want 9.9", got)
	}
	// Add 100 observations in (10,100]: p90 rank 180 falls 80% into the
	// second bucket: 10 + 0.8*90 = 82.
	for i := 0; i < 100; i++ {
		h.Observe(50)
	}
	if got := h.Quantile(0.90); got != 82 {
		t.Fatalf("p90 = %v, want 82", got)
	}
	// Ranks landing past every finite bound report the highest bound.
	h2 := NewHistogram([]int64{10})
	h2.Observe(5000)
	if got := h2.Quantile(0.5); got != 10 {
		t.Fatalf("+Inf-bucket quantile = %v, want highest finite bound 10", got)
	}
	// Empty and nil histograms report 0.
	if NewHistogram([]int64{1}).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	var hn *Histogram
	if hn.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile != 0")
	}
}

// TestSnapshotQuantileKeys: Snapshot must expose p50/p90/p99 for populated
// histograms and omit them for empty ones.
func TestSnapshotQuantileKeys(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("depth", []int64{10, 100}).Observe(5)
	reg.Histogram("empty", []int64{10})
	snap := reg.Snapshot()
	for _, k := range []string{"depth.p50", "depth.p90", "depth.p99"} {
		if _, ok := snap[k].(float64); !ok {
			t.Fatalf("snapshot missing quantile %s: %v", k, snap)
		}
	}
	if _, ok := snap["empty.p50"]; ok {
		t.Fatal("empty histogram published a quantile")
	}
}

// TestQuantilesConcurrent observes and snapshots quantiles from parallel
// goroutines (run under -race): the estimate reads bucket atomics only.
func TestQuantilesConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := reg.Histogram("lat", []int64{10, 100, 1000})
			for i := 0; i < 2000; i++ {
				h.Observe(int64(i % 1500))
				if i%128 == 0 {
					_ = h.Quantile(0.99)
					_ = reg.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	h := reg.Histogram("lat", nil)
	if p50, p99 := h.Quantile(0.5), h.Quantile(0.99); p50 <= 0 || p99 < p50 {
		t.Fatalf("implausible quantiles p50=%v p99=%v", p50, p99)
	}
}

// TestValidateEventSchema exercises the shared schema validator.
func TestValidateEventSchema(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Emit(Event{Layer: "spec", Kind: "level", Node: -1})
	tr.Emit(Event{Layer: "engine", Kind: "step", Node: 0})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range evs {
		if e.V != TraceSchemaVersion {
			t.Fatalf("emitted event has v=%d, want %d", e.V, TraceSchemaVersion)
		}
		if err := ValidateEvent(e); err != nil {
			t.Fatalf("emitted event fails schema: %v", err)
		}
	}
	bad := []Event{
		{V: 99, Seq: 1, Layer: "spec", Kind: "level"},
		{V: TraceSchemaVersion, Seq: 0, Layer: "spec", Kind: "level"},
		{V: TraceSchemaVersion, Seq: 1, Layer: "martian", Kind: "level"},
		{V: TraceSchemaVersion, Seq: 1, Layer: "spec", Kind: ""},
		{V: TraceSchemaVersion, Seq: 1, Layer: "spec", Kind: "level", Node: -2},
	}
	for i, e := range bad {
		if ValidateEvent(e) == nil {
			t.Fatalf("bad event %d accepted: %+v", i, e)
		}
	}

	good := map[string]any{"schema": float64(MetricsSchemaVersion), "distinct_states": float64(5), "result": map[string]any{}, "cover": map[string]any{}}
	if err := ValidateMetrics(good); err != nil {
		t.Fatalf("good metrics rejected: %v", err)
	}
	for i, snap := range []map[string]any{
		{"distinct_states": float64(5)},
		{"schema": float64(99)},
		{"schema": float64(MetricsSchemaVersion), "oops": "text"},
	} {
		if ValidateMetrics(snap) == nil {
			t.Fatalf("bad metrics %d accepted", i)
		}
	}
}
