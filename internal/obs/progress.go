package obs

import (
	"fmt"
	"io"
	"os"
	"time"
)

// Progress is a point-in-time snapshot of a checking run, delivered to a
// ProgressFunc on the reporter's cadence — the reproduction's analogue of
// TLC's periodic "Progress(depth): N states generated, M distinct states
// found, K states left on queue" lines.
type Progress struct {
	// DistinctStates is the number of distinct (fingerprint-deduplicated)
	// states discovered so far. For stateless search it counts raw visits.
	DistinctStates int
	// QueueLen is the current BFS frontier size (states awaiting expansion
	// plus states discovered for the next level). Zero for walk modes.
	QueueLen int
	// Transitions is the number of successor states generated (including
	// duplicates).
	Transitions int64
	// DedupHits is the number of successors discarded because their
	// canonical fingerprint was already visited.
	DedupHits int64
	// Depth is the current BFS level (walk modes: the walk index).
	Depth int
	// StatesPerSec is the distinct-state throughput over the reporting
	// window (not the whole run), the quantity behind the paper's 10^9
	// states/machine-day headline.
	StatesPerSec float64
	// Elapsed is the wall-clock time since the run started.
	Elapsed time.Duration
	// Final marks the last report of a run (emitted unconditionally).
	Final bool
}

// DedupRatio is the fraction of generated successors that were duplicates.
func (p Progress) DedupRatio() float64 {
	if p.Transitions == 0 {
		return 0
	}
	return float64(p.DedupHits) / float64(p.Transitions)
}

// String renders the TLC-style progress line.
func (p Progress) String() string {
	return fmt.Sprintf("progress(%d): %d distinct states, queue %d, %d transitions, dedup %.1f%%, %.0f states/s, elapsed %s",
		p.Depth, p.DistinctStates, p.QueueLen, p.Transitions, 100*p.DedupRatio(), p.StatesPerSec, p.Elapsed.Round(time.Millisecond))
}

// ProgressFunc receives progress snapshots during a run.
type ProgressFunc func(Progress)

// PrintProgress returns a ProgressFunc writing TLC-style lines to w.
func PrintProgress(w io.Writer) ProgressFunc {
	return func(p Progress) { fmt.Fprintln(w, p.String()) }
}

// StderrProgress is the default progress printer.
func StderrProgress() ProgressFunc { return PrintProgress(os.Stderr) }

// Reporter throttles progress callbacks to a time interval and/or a
// distinct-state-count cadence. It is not concurrency-safe: the explorer
// drives it from its serial merge loop. The zero Interval/EveryStates
// disable the corresponding trigger; with both zero every Maybe call emits.
type Reporter struct {
	fn          ProgressFunc
	interval    time.Duration
	everyStates int
	now         func() time.Time

	start      time.Time
	lastEmit   time.Time
	lastStates int
}

// NewReporter builds a reporter invoking fn at most once per interval or
// per everyStates newly discovered distinct states (whichever fires first).
// A nil fn yields a reporter whose methods no-op.
func NewReporter(fn ProgressFunc, interval time.Duration, everyStates int) *Reporter {
	return newReporter(fn, interval, everyStates, time.Now)
}

// NewReporterClock is NewReporter with an injectable clock, for tests.
func NewReporterClock(fn ProgressFunc, interval time.Duration, everyStates int, now func() time.Time) *Reporter {
	return newReporter(fn, interval, everyStates, now)
}

func newReporter(fn ProgressFunc, interval time.Duration, everyStates int, now func() time.Time) *Reporter {
	r := &Reporter{fn: fn, interval: interval, everyStates: everyStates, now: now}
	r.start = now()
	r.lastEmit = r.start
	return r
}

// Due reports whether the cadence has elapsed for the given distinct-state
// count. The explorer calls this from its merge loop; it costs one clock
// read when a time interval is configured.
func (r *Reporter) Due(distinct int) bool {
	if r == nil || r.fn == nil {
		return false
	}
	if r.everyStates > 0 && distinct-r.lastStates >= r.everyStates {
		return true
	}
	if r.interval > 0 && r.now().Sub(r.lastEmit) >= r.interval {
		return true
	}
	return r.everyStates == 0 && r.interval == 0
}

// Emit fills the rate/elapsed fields of p and delivers it, resetting the
// cadence. Call after Due returns true, or unconditionally for the final
// report (set p.Final).
func (r *Reporter) Emit(p Progress) {
	if r == nil || r.fn == nil {
		return
	}
	t := r.now()
	p.Elapsed = t.Sub(r.start)
	if window := t.Sub(r.lastEmit); window > 0 {
		p.StatesPerSec = float64(p.DistinctStates-r.lastStates) / window.Seconds()
	}
	r.lastEmit = t
	r.lastStates = p.DistinctStates
	r.fn(p)
}

// Maybe emits p when the cadence is due. Returns true when it emitted.
func (r *Reporter) Maybe(p Progress) bool {
	if !r.Due(p.DistinctStates) {
		return false
	}
	r.Emit(p)
	return true
}
