package obs

import (
	"fmt"
	"io"
	"os"
	"time"
)

// Progress is a point-in-time snapshot of a checking run, delivered to a
// ProgressFunc on the reporter's cadence — the reproduction's analogue of
// TLC's periodic "Progress(depth): N states generated, M distinct states
// found, K states left on queue" lines.
type Progress struct {
	// DistinctStates is the number of distinct (fingerprint-deduplicated)
	// states discovered so far. For stateless search it counts raw visits.
	DistinctStates int
	// QueueLen is the current BFS frontier size (states awaiting expansion
	// plus states discovered for the next level). Zero for walk modes.
	QueueLen int
	// Transitions is the number of successor states generated (including
	// duplicates).
	Transitions int64
	// DedupHits is the number of successors discarded because their
	// canonical fingerprint was already visited.
	DedupHits int64
	// Depth is the current BFS level (walk modes: the walk index).
	Depth int
	// StatesPerSec is the distinct-state throughput over the reporting
	// window (not the whole run), the quantity behind the paper's 10^9
	// states/machine-day headline.
	StatesPerSec float64
	// StatesPerSecEWMA smooths StatesPerSec with an exponentially weighted
	// moving average across reports, so one slow window does not read as a
	// collapse.
	StatesPerSecEWMA float64
	// ETA estimates the time until the search exhausts its space, derived
	// from the dedup-rate curve: each expanded state yields m fresh states
	// on average over the window; when m < 1 the frontier is a shrinking
	// geometric series and queue/(1-m) expansions remain. Zero when the
	// space is still growing (m >= 1) or no estimate is possible — TLC's
	// progress estimation, adapted to frontier arithmetic.
	ETA time.Duration
	// Stalled marks a report inside a plateau: at least Reporter.StallAfter
	// consecutive reports discovered zero new distinct states. A long
	// stalled stretch usually means the run is grinding a saturated dedup
	// plateau rather than finding new behaviour.
	Stalled bool
	// StallWarning is set on exactly the first Stalled report of each
	// plateau — the edge on which warnings and trace events fire once.
	StallWarning bool
	// Elapsed is the wall-clock time since the run started.
	Elapsed time.Duration
	// Final marks the last report of a run (emitted unconditionally).
	Final bool
	// Warning carries an out-of-band degradation notice (checkpoint write
	// failure, spill fallback). A report with Warning set is delivered via
	// Reporter.Warnf outside the normal cadence and has all counter fields
	// zero.
	Warning string
}

// DedupRatio is the fraction of generated successors that were duplicates.
func (p Progress) DedupRatio() float64 {
	if p.Transitions == 0 {
		return 0
	}
	return float64(p.DedupHits) / float64(p.Transitions)
}

// String renders the TLC-style progress line, extended with the analytics
// fields when they carry information: smoothed throughput, the dedup-curve
// ETA, and a stall marker. Warning-only reports render as a warning line.
func (p Progress) String() string {
	if p.Warning != "" {
		return "warning: " + p.Warning
	}
	s := fmt.Sprintf("progress(%d): %d distinct states, queue %d, %d transitions, dedup %.1f%%, %.0f states/s, elapsed %s",
		p.Depth, p.DistinctStates, p.QueueLen, p.Transitions, 100*p.DedupRatio(), p.StatesPerSec, p.Elapsed.Round(time.Millisecond))
	if p.StatesPerSecEWMA > 0 && !p.Final {
		s += fmt.Sprintf(", ~%.0f states/s avg", p.StatesPerSecEWMA)
	}
	if p.ETA > 0 && !p.Final {
		s += fmt.Sprintf(", ETA %s", p.ETA.Round(time.Second))
	}
	if p.Stalled {
		s += " [stalled]"
	}
	return s
}

// ProgressFunc receives progress snapshots during a run.
type ProgressFunc func(Progress)

// PrintProgress returns a ProgressFunc writing TLC-style lines to w, plus a
// one-line warning on the leading edge of each stall plateau.
func PrintProgress(w io.Writer) ProgressFunc {
	return func(p Progress) {
		fmt.Fprintln(w, p.String())
		if p.StallWarning {
			fmt.Fprintf(w, "warning: no new distinct states across recent reports — the run may be grinding a saturated dedup plateau\n")
		}
	}
}

// StderrProgress is the default progress printer.
func StderrProgress() ProgressFunc { return PrintProgress(os.Stderr) }

// Reporter throttles progress callbacks to a time interval and/or a
// distinct-state-count cadence. It is not concurrency-safe: the explorer
// drives it from its serial merge loop. The zero Interval/EveryStates
// disable the corresponding trigger; with both zero every Maybe call emits.
type Reporter struct {
	// StallAfter is the number of consecutive reports with zero new
	// distinct states after which the reporter marks the run stalled
	// (Progress.Stalled, with Progress.StallWarning on the plateau's first
	// stalled report). Zero means the default of 3; negative disables
	// stall detection. Set before the first Maybe/Emit call.
	StallAfter int
	// Tracer, when set, receives one {layer: "obs", kind: "stall"} event
	// per detected plateau, so stalls are visible in the JSONL record as
	// well as on stderr. Set before the first Maybe/Emit call.
	Tracer *Tracer

	fn          ProgressFunc
	interval    time.Duration
	everyStates int
	now         func() time.Time

	start      time.Time
	lastEmit   time.Time
	lastStates int
	lastQueue  int

	ewma     float64
	ewmaSet  bool
	zeroRuns int
	stalled  bool
}

// NewReporter builds a reporter invoking fn at most once per interval or
// per everyStates newly discovered distinct states (whichever fires first).
// A nil fn yields a reporter whose methods no-op.
func NewReporter(fn ProgressFunc, interval time.Duration, everyStates int) *Reporter {
	return newReporter(fn, interval, everyStates, time.Now)
}

// NewReporterClock is NewReporter with an injectable clock, for tests.
func NewReporterClock(fn ProgressFunc, interval time.Duration, everyStates int, now func() time.Time) *Reporter {
	return newReporter(fn, interval, everyStates, now)
}

func newReporter(fn ProgressFunc, interval time.Duration, everyStates int, now func() time.Time) *Reporter {
	r := &Reporter{fn: fn, interval: interval, everyStates: everyStates, now: now}
	r.start = now()
	r.lastEmit = r.start
	return r
}

// Due reports whether the cadence has elapsed for the given distinct-state
// count. The explorer calls this from its merge loop; it costs one clock
// read when a time interval is configured.
func (r *Reporter) Due(distinct int) bool {
	if r == nil || r.fn == nil {
		return false
	}
	if r.everyStates > 0 && distinct-r.lastStates >= r.everyStates {
		return true
	}
	if r.interval > 0 && r.now().Sub(r.lastEmit) >= r.interval {
		return true
	}
	return r.everyStates == 0 && r.interval == 0
}

// ewmaAlpha weights the newest window's throughput in the smoothed rate;
// ~0.3 follows a shift within 3-4 reports without tracking every wobble.
const ewmaAlpha = 0.3

// defaultStallAfter is the plateau length (in reports) that triggers the
// stall warning when Reporter.StallAfter is left zero.
const defaultStallAfter = 3

// Emit fills the rate/elapsed/analytics fields of p and delivers it,
// resetting the cadence. Call after Due returns true, or unconditionally
// for the final report (set p.Final).
//
// Analytics computed here, all from deltas between consecutive reports:
// the smoothed throughput (StatesPerSecEWMA), the dedup-curve ETA (see
// Progress.ETA), and stall detection (Stalled/StallWarning, governed by
// StallAfter). Final reports carry the smoothed rate but no ETA or stall
// edge — the run is already over.
func (r *Reporter) Emit(p Progress) {
	if r == nil || r.fn == nil {
		return
	}
	t := r.now()
	p.Elapsed = t.Sub(r.start)
	fresh := p.DistinctStates - r.lastStates
	window := t.Sub(r.lastEmit)
	if window > 0 {
		p.StatesPerSec = float64(fresh) / window.Seconds()
		if !r.ewmaSet {
			r.ewma, r.ewmaSet = p.StatesPerSec, true
		} else {
			r.ewma = ewmaAlpha*p.StatesPerSec + (1-ewmaAlpha)*r.ewma
		}
	}
	p.StatesPerSecEWMA = r.ewma

	if !p.Final {
		// ETA from the dedup-rate curve: over the window the frontier
		// consumed `expanded` states and gained `fresh`, so each expansion
		// multiplies the frontier by m = fresh/expanded. When m < 1 the
		// remaining work is the geometric series queue/(1-m) expansions at
		// the window's expansion rate.
		expanded := fresh - (p.QueueLen - r.lastQueue)
		if expanded > 0 && window > 0 && p.QueueLen > 0 {
			m := float64(fresh) / float64(expanded)
			if m < 1 {
				remaining := float64(p.QueueLen) / (1 - m)
				rate := float64(expanded) / window.Seconds()
				if rate > 0 {
					p.ETA = time.Duration(remaining / rate * float64(time.Second)).Round(time.Millisecond)
				}
			}
		}

		stallAfter := r.StallAfter
		if stallAfter == 0 {
			stallAfter = defaultStallAfter
		}
		if stallAfter > 0 {
			if fresh == 0 {
				r.zeroRuns++
			} else {
				r.zeroRuns, r.stalled = 0, false
			}
			if r.zeroRuns >= stallAfter {
				p.Stalled = true
				if !r.stalled {
					p.StallWarning = true
					r.stalled = true
					r.Tracer.Emit(Event{
						Layer: "obs", Kind: "stall", Node: -1,
						Detail: map[string]string{
							"reports":  fmt.Sprintf("%d", r.zeroRuns),
							"distinct": fmt.Sprintf("%d", p.DistinctStates),
							"depth":    fmt.Sprintf("%d", p.Depth),
						},
					})
				}
			}
		}
	}

	r.lastEmit = t
	r.lastStates = p.DistinctStates
	r.lastQueue = p.QueueLen
	r.fn(p)
}

// Warnf delivers an out-of-band warning through the progress callback,
// bypassing the cadence and leaving it undisturbed (no counter or rate state
// changes). Nil-safe; no-op without a callback.
func (r *Reporter) Warnf(format string, args ...any) {
	if r == nil || r.fn == nil {
		return
	}
	r.fn(Progress{Warning: fmt.Sprintf(format, args...)})
}

// Maybe emits p when the cadence is due. Returns true when it emitted.
func (r *Reporter) Maybe(p Progress) bool {
	if !r.Due(p.DistinctStates) {
		return false
	}
	r.Emit(p)
	return true
}
