// Package obs is SandTable's zero-dependency observability layer: a
// concurrency-safe metrics registry the hot exploration loops can update
// without lock contention, a TLC-style progress reporter for long checking
// runs, a structured JSONL event tracer for the implementation-level
// engine/replay layers, and pprof/expvar profiling hooks.
//
// The paper's headline claim is exploration *speed* (~10^9 distinct
// states/machine-day); this package is how the reproduction measures it
// while a run is in flight rather than only after it ends. All primitives
// are nil-safe: a nil *Counter, *Gauge, *Histogram, *Registry, or *Tracer
// accepts every call as a no-op, so instrumented hot paths need no
// conditional wiring.
package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d. No-op on a nil receiver.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// SetMax raises the gauge to v if v exceeds the current value (a lock-free
// high-water mark).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Add adjusts the gauge by d (may be negative).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram: counts of observations at most
// each upper bound, plus a count and sum for mean computation. Buckets are
// cumulative on export (Prometheus-style `le` semantics).
type Histogram struct {
	bounds []int64        // sorted upper bounds; observations above all bounds land in +Inf
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	count  atomic.Int64
	sum    atomic.Int64
}

// NewHistogram builds a histogram with the given sorted upper bounds.
func NewHistogram(bounds []int64) *Histogram {
	b := append([]int64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket counts,
// Prometheus histogram_quantile-style: the target rank is located in its
// bucket and interpolated linearly between the bucket's bounds. Ranks
// landing in the +Inf bucket report the highest finite bound (the estimate
// is then a lower bound, as in Prometheus). Returns 0 for an empty or nil
// histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 || len(h.bounds) == 0 {
		return 0
	}
	rank := q * float64(n)
	var cum int64
	for i, b := range h.bounds {
		prev := cum
		cum += h.counts[i].Load()
		if float64(cum) >= rank {
			lo := int64(0)
			if i > 0 {
				lo = h.bounds[i-1]
			}
			inBucket := cum - prev
			if inBucket == 0 {
				return float64(b)
			}
			frac := (rank - float64(prev)) / float64(inBucket)
			return float64(lo) + frac*float64(b-lo)
		}
	}
	return float64(h.bounds[len(h.bounds)-1])
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Registry is a named collection of metrics. Registration takes a short
// lock; updates through the returned handles are lock-free atomics, so the
// BFS hot loop can hold a *Counter and Add to it with no contention.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (later calls ignore bounds). Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// StartPhase starts a named wall-clock phase timer; the returned func stops
// it, accumulating the elapsed time into counter "phase.<name>_ns". Safe on
// a nil registry (returns a no-op).
func (r *Registry) StartPhase(name string) func() {
	if r == nil {
		return func() {}
	}
	c := r.Counter("phase." + name + "_ns")
	start := time.Now()
	return func() { c.Add(time.Since(start).Nanoseconds()) }
}

// Snapshot renders every metric into a flat map: counters and gauges by
// name, histograms as <name>.count, <name>.sum, <name>.mean, estimated
// <name>.p50 / <name>.p90 / <name>.p99 quantiles, and cumulative
// <name>.le_<bound> / <name>.le_inf buckets. Nil registries snapshot empty.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	if r == nil {
		return out
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name+".count"] = h.Count()
		out[name+".sum"] = h.Sum()
		if n := h.Count(); n > 0 {
			out[name+".mean"] = float64(h.Sum()) / float64(n)
			out[name+".p50"] = h.Quantile(0.50)
			out[name+".p90"] = h.Quantile(0.90)
			out[name+".p99"] = h.Quantile(0.99)
		}
		var cum int64
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			out[name+".le_"+strconv.FormatInt(b, 10)] = cum
		}
		out[name+".le_inf"] = cum + h.counts[len(h.bounds)].Load()
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
