package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format export (version 0.0.4, the format every Prometheus
// server scrapes). Zero-dependency like the rest of the package: the
// renderer walks the registry directly and writes families in sorted order,
// so output is deterministic and diffable. Counters and gauges map to their
// Prometheus namesakes; histograms render the full cumulative bucket series
// plus _sum and _count, so quantiles can be computed server-side with
// histogram_quantile().

// promNamespace prefixes every exported metric name.
const promNamespace = "sandtable_"

// promName sanitises a registry metric name into a legal Prometheus metric
// name: [a-zA-Z_:][a-zA-Z0-9_:]*. Registry names use dots and brackets
// ("fpset.entries", "conformance.worker[0].walks"); every illegal rune
// becomes an underscore and a leading digit gets one prepended.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(promNamespace) + len(name))
	b.WriteString(promNamespace)
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the registry in Prometheus text format. Nil
// registries render nothing. The writer's error is returned (first error
// wins); rendering itself cannot fail.
func WritePrometheus(w io.Writer, r *Registry) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()

	var names []string
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s SandTable counter %s\n# TYPE %s counter\n%s %d\n",
			pn, name, pn, pn, r.counters[name].Value()); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range r.gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s SandTable gauge %s\n# TYPE %s gauge\n%s %d\n",
			pn, name, pn, pn, r.gauges[name].Value()); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := r.hists[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s SandTable histogram %s\n# TYPE %s histogram\n", pn, name, pn); err != nil {
			return err
		}
		var cum int64
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", pn, strconv.FormatInt(b, 10), cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			pn, cum, pn, h.Sum(), pn, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// PrometheusHandler serves the latest registry held by get (an indirection,
// so a republished registry is picked up scrape-to-scrape) in text format
// on every request.
func PrometheusHandler(get func() *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, get())
	})
}
