package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

var (
	publishMu sync.Mutex
	published = map[string]bool{}
)

// publish exposes the registry under an expvar name, tolerating repeated
// calls (expvar.Publish panics on duplicates; CLI subcommands may start
// more than one debug server per process in tests).
func publish(name string, r *Registry) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if published[name] {
		return
	}
	published[name] = true
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// ServeDebug starts an HTTP server on addr exposing net/http/pprof under
// /debug/pprof/ and expvar (including the registry snapshot as the
// "sandtable" var) under /debug/vars — the profiling hooks for long
// exploration runs. It returns the bound address (useful with ":0") and a
// shutdown func. The server runs until stopped; handler errors surface on
// the returned channel-free API as best-effort logging by net/http.
func ServeDebug(addr string, reg *Registry) (string, func() error, error) {
	if reg != nil {
		publish("sandtable", reg)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: pprof listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), func() error { return srv.Close() }, nil
}
