package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

var (
	publishMu sync.Mutex
	published = map[string]*registryHolder{}
)

// registryHolder is the indirection behind an expvar name: the expvar
// closure reads whatever registry the holder currently points at, so
// republishing under the same name swaps the registry atomically instead of
// silently keeping the first one (expvar.Publish itself is
// register-once-per-process).
type registryHolder struct {
	v atomic.Pointer[Registry]
}

func (h *registryHolder) load() *Registry {
	if h == nil {
		return nil
	}
	return h.v.Load()
}

// publish exposes the registry under an expvar name, tolerating repeated
// calls (expvar.Publish panics on duplicates; CLI subcommands may start
// more than one debug server per process in tests). A repeated publish
// under the same name re-points the exported var at the newest registry —
// the endpoint must never keep serving a previous run's stale snapshot.
func publish(name string, r *Registry) *registryHolder {
	publishMu.Lock()
	defer publishMu.Unlock()
	h := published[name]
	if h == nil {
		h = &registryHolder{}
		published[name] = h
		expvar.Publish(name, expvar.Func(func() any { return h.load().Snapshot() }))
	}
	h.v.Store(r)
	return h
}

// ServeDebug starts an HTTP server on addr exposing net/http/pprof under
// /debug/pprof/, expvar (including the registry snapshot as the "sandtable"
// var) under /debug/vars, and the registry in Prometheus text format under
// /metrics — the profiling and scrape hooks for long exploration runs. It
// returns the bound address (useful with ":0") and a shutdown func. The
// server runs until stopped; handler errors surface on the returned
// channel-free API as best-effort logging by net/http.
func ServeDebug(addr string, reg *Registry) (string, func() error, error) {
	if reg != nil {
		publish("sandtable", reg)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	// Each server scrapes its own registry: two concurrent runs in one
	// process get distinct /metrics endpoints, while the process-global
	// expvar var tracks whichever run published last.
	mux.Handle("/metrics", PrometheusHandler(func() *Registry { return reg }))
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: pprof listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), func() error { return srv.Close() }, nil
}
