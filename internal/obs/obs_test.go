package obs

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrent hammers one registry from parallel goroutines —
// registration races, counter adds, gauge high-water marks, histogram
// observations — and checks the totals. Run under -race.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 16
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Get-or-create on every iteration: the registration path
				// itself must be race-free.
				reg.Counter("transitions").Inc()
				reg.Counter(fmt.Sprintf("per_g.%d", g%4)).Inc()
				reg.Gauge("queue_len").Set(int64(i))
				reg.Gauge("max_queue_len").SetMax(int64(g*perG + i))
				reg.Histogram("depth", []int64{10, 100, 1000}).Observe(int64(i % 2000))
				if i%64 == 0 {
					_ = reg.Snapshot() // concurrent readers
				}
			}
		}(g)
	}
	wg.Wait()

	if got := reg.Counter("transitions").Value(); got != goroutines*perG {
		t.Fatalf("transitions = %d, want %d", got, goroutines*perG)
	}
	var perG4 int64
	for i := 0; i < 4; i++ {
		perG4 += reg.Counter(fmt.Sprintf("per_g.%d", i)).Value()
	}
	if perG4 != goroutines*perG {
		t.Fatalf("sharded counters sum = %d, want %d", perG4, goroutines*perG)
	}
	if got, want := reg.Gauge("max_queue_len").Value(), int64((goroutines-1)*perG+perG-1); got != want {
		t.Fatalf("max_queue_len = %d, want %d", got, want)
	}
	h := reg.Histogram("depth", nil)
	if h.Count() != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", h.Count(), goroutines*perG)
	}
	snap := reg.Snapshot()
	if snap["depth.le_inf"].(int64) != goroutines*perG {
		t.Fatalf("cumulative +Inf bucket = %v", snap["depth.le_inf"])
	}
	if snap["depth.le_10"].(int64) >= snap["depth.le_100"].(int64) {
		t.Fatalf("buckets not cumulative: %v >= %v", snap["depth.le_10"], snap["depth.le_100"])
	}
}

func TestNilSafety(t *testing.T) {
	var reg *Registry
	reg.Counter("x").Add(1)
	reg.Gauge("y").SetMax(2)
	reg.Histogram("z", []int64{1}).Observe(3)
	reg.StartPhase("p")()
	if len(reg.Snapshot()) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	var tr *Tracer
	tr.Emit(Event{Layer: "engine", Kind: "step"})
	if tr.Flush() != nil || tr.Err() != nil || tr.Events() != 0 {
		t.Fatal("nil tracer not a no-op")
	}
	var rep *Reporter
	if rep.Due(10) {
		t.Fatal("nil reporter claims due")
	}
	rep.Emit(Progress{})
}

// TestReporterCadence drives the reporter with a virtual clock: the time
// trigger, the state-count trigger, and the window-relative states/sec
// computation are all deterministic.
func TestReporterCadence(t *testing.T) {
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	var got []Progress
	r := NewReporterClock(func(p Progress) { got = append(got, p) }, 5*time.Second, 0, now)

	if r.Due(100) {
		t.Fatal("due before interval elapsed")
	}
	clock = clock.Add(3 * time.Second)
	if r.Maybe(Progress{DistinctStates: 100}) {
		t.Fatal("emitted before interval elapsed")
	}
	clock = clock.Add(2 * time.Second)
	if !r.Maybe(Progress{DistinctStates: 1000, Depth: 3}) {
		t.Fatal("not emitted at interval")
	}
	if len(got) != 1 {
		t.Fatalf("emits = %d, want 1", len(got))
	}
	// 1000 states over a 5s window.
	if got[0].StatesPerSec != 200 {
		t.Fatalf("states/s = %v, want 200", got[0].StatesPerSec)
	}
	if got[0].Elapsed != 5*time.Second {
		t.Fatalf("elapsed = %v, want 5s", got[0].Elapsed)
	}
	// Cadence resets after an emit.
	if r.Due(1000) {
		t.Fatal("due immediately after emit")
	}

	// State-count trigger, no time trigger.
	got = nil
	clock = time.Unix(2000, 0)
	r = NewReporterClock(func(p Progress) { got = append(got, p) }, 0, 500, now)
	if r.Due(499) {
		t.Fatal("due below state cadence")
	}
	clock = clock.Add(2 * time.Second)
	if !r.Maybe(Progress{DistinctStates: 500}) {
		t.Fatal("not emitted at state cadence")
	}
	if got[0].StatesPerSec != 250 {
		t.Fatalf("states/s = %v, want 250", got[0].StatesPerSec)
	}
	if r.Due(999) {
		t.Fatal("cadence not reset after emit")
	}
	if !r.Due(1000) {
		t.Fatal("second state cadence not due")
	}

	// Final report is unconditional via Emit.
	r.Emit(Progress{DistinctStates: 1001, Final: true})
	if len(got) != 2 || !got[1].Final {
		t.Fatalf("final emit missing: %+v", got)
	}
}

func TestProgressString(t *testing.T) {
	p := Progress{Depth: 4, DistinctStates: 1000, QueueLen: 50, Transitions: 4000, DedupHits: 3000, StatesPerSec: 123, Elapsed: 2 * time.Second}
	s := p.String()
	for _, want := range []string{"progress(4)", "1000 distinct states", "queue 50", "dedup 75.0%", "123 states/s"} {
		if !strings.Contains(s, want) {
			t.Fatalf("progress line %q missing %q", s, want)
		}
	}
	if p.DedupRatio() != 0.75 {
		t.Fatalf("dedup ratio = %v", p.DedupRatio())
	}
}

// TestTracerRoundTrip emits events from concurrent goroutines, re-reads the
// JSONL stream, and compares: every event survives with a unique sequence
// number and intact fields.
func TestTracerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	const goroutines = 8
	const perG = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tr.Emit(Event{
					Layer:  "vnet",
					Kind:   "send",
					Node:   g,
					Peer:   (g + 1) % goroutines,
					Index:  i,
					Detail: map[string]string{"payload": fmt.Sprintf("m%d", i)},
				})
			}
		}(g)
	}
	wg.Wait()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if tr.Events() != goroutines*perG {
		t.Fatalf("events = %d, want %d", tr.Events(), goroutines*perG)
	}

	evs, err := ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != goroutines*perG {
		t.Fatalf("read %d events, want %d", len(evs), goroutines*perG)
	}
	seen := make(map[int64]bool)
	perNode := make(map[int]int)
	for _, e := range evs {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
		if e.Layer != "vnet" || e.Kind != "send" {
			t.Fatalf("corrupted event: %+v", e)
		}
		if e.Detail["payload"] != fmt.Sprintf("m%d", e.Index) {
			t.Fatalf("detail mismatch: %+v", e)
		}
		perNode[e.Node]++
	}
	for g := 0; g < goroutines; g++ {
		if perNode[g] != perG {
			t.Fatalf("node %d has %d events, want %d", g, perNode[g], perG)
		}
	}

	// Blank lines are tolerated; garbage is not.
	if _, err := ReadEvents(strings.NewReader("\n" + `{"seq":1,"layer":"x","kind":"y","node":0}` + "\n\n")); err != nil {
		t.Fatalf("blank lines rejected: %v", err)
	}
	if _, err := ReadEvents(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestPhaseTimerAndJSON(t *testing.T) {
	reg := NewRegistry()
	stop := reg.StartPhase("explore")
	time.Sleep(2 * time.Millisecond)
	stop()
	if v := reg.Counter("phase.explore_ns").Value(); v <= 0 {
		t.Fatalf("phase duration = %d, want > 0", v)
	}
	reg.Counter("distinct_states").Add(42)
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, `"distinct_states": 42`) || !strings.Contains(s, "phase.explore_ns") {
		t.Fatalf("JSON snapshot missing keys:\n%s", s)
	}
}

func TestServeDebug(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("distinct_states").Add(7)
	addr, stop, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
}
