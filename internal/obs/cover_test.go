package obs

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestWorkerCoverMergeAtBarrier drives the two-phase collection protocol:
// workers accumulate privately, the merge folds deltas into the run profile
// and resets the workers, and repeated merge rounds keep totals exact.
func TestWorkerCoverMergeAtBarrier(t *testing.T) {
	cover := NewCover("bfs", []string{"A", "B", "C"})
	w1, w2 := NewWorkerCover(), NewWorkerCover()

	// Block 1: A fires on both workers, B only on w2.
	w1.Observe("A", 1, true)
	w1.Observe("A", 1, false)
	w2.Observe("A", 2, true)
	w2.Observe("B", 2, false)
	w2.SymmetryHit()
	cover.MergeWorker(w1)
	cover.MergeWorker(w2)

	// Block 2: the reset workers accumulate again.
	w1.Observe("A", 3, false)
	w1.Observe("B", 3, true)
	cover.MergeWorker(w1)
	cover.MergeWorker(w2) // nothing new on w2: merge must be a no-op

	a := cover.Actions["A"]
	if a.Fired != 4 || a.Fresh != 2 || a.FirstDepth != 1 {
		t.Fatalf("A = %+v, want fired 4 fresh 2 first-depth 1", a)
	}
	if a.LastFreshDepth != 2 {
		t.Fatalf("A last fresh depth = %d, want 2", a.LastFreshDepth)
	}
	b := cover.Actions["B"]
	if b.Fired != 2 || b.Fresh != 1 || b.FirstDepth != 2 || b.LastFreshDepth != 3 {
		t.Fatalf("B = %+v", b)
	}
	if cover.SymmetryHits != 1 {
		t.Fatalf("symmetry hits = %d, want 1", cover.SymmetryHits)
	}
	if got := cover.NeverFired(); !reflect.DeepEqual(got, []string{"C"}) {
		t.Fatalf("never-fired = %v, want [C]", got)
	}
	if got := cover.TotalFired(); got != 6 {
		t.Fatalf("total fired = %d, want 6", got)
	}
	if got := cover.ActionNames(); !reflect.DeepEqual(got, []string{"A", "B", "C"}) {
		t.Fatalf("action names = %v", got)
	}
}

// TestCoverZeroYieldAndYield checks the saturation flags: an action whose
// every successor was a duplicate is zero-yield, and Yield reports the
// fresh fraction.
func TestCoverZeroYieldAndYield(t *testing.T) {
	cover := NewCover("bfs", nil)
	cover.Observe("Hot", 1, true)
	cover.Observe("Hot", 1, true)
	cover.Observe("Hot", 2, false)
	cover.Observe("Saturated", 1, false)
	cover.Observe("Saturated", 2, false)

	if got := cover.ZeroYield(); !reflect.DeepEqual(got, []string{"Saturated"}) {
		t.Fatalf("zero-yield = %v, want [Saturated]", got)
	}
	if cover.NeverFired() != nil {
		t.Fatalf("never-fired without a declared vocabulary should be nil")
	}
	hot := cover.Actions["Hot"]
	if y := hot.Yield(); y < 0.66 || y > 0.67 {
		t.Fatalf("Hot yield = %v, want 2/3", y)
	}
	if cover.Actions["Saturated"].Yield() != 0 {
		t.Fatal("Saturated yield should be 0")
	}
}

// TestCoverJSONRoundTrip: the profile embedded in -metrics-out must decode
// back identically — `sandtable report` reads it from the artifact.
func TestCoverJSONRoundTrip(t *testing.T) {
	cover := NewCover("bfs", []string{"A", "B"})
	cover.Observe("A", 0, true)
	cover.Levels = append(cover.Levels, LevelStats{Depth: 0, Frontier: 1, Fresh: 1, Transitions: 3, Dedup: 2, FpsetProbes: 5})
	cover.SymmetryHits = 7

	buf, err := json.Marshal(cover)
	if err != nil {
		t.Fatal(err)
	}
	var back Cover
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != MetricsSchemaVersion {
		t.Fatalf("schema = %d, want %d", back.Schema, MetricsSchemaVersion)
	}
	if !reflect.DeepEqual(back.Actions["A"], cover.Actions["A"]) || !reflect.DeepEqual(back.Levels, cover.Levels) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", back, cover)
	}
	if !reflect.DeepEqual(back.NeverFired(), []string{"B"}) {
		t.Fatalf("never-fired after round trip = %v", back.NeverFired())
	}
	if back.SymmetryHits != 7 {
		t.Fatalf("symmetry hits = %d", back.SymmetryHits)
	}
	if lv := back.Levels[0]; lv.DedupRatio() < 0.66 || lv.DedupRatio() > 0.67 {
		t.Fatalf("level dedup ratio = %v", lv.DedupRatio())
	}
}

// TestCoverNilSafety: nil profiles and nil worker accumulators must accept
// every call, so instrumented paths need no conditionals.
func TestCoverNilSafety(t *testing.T) {
	var c *Cover
	c.Observe("A", 0, true)
	c.MergeWorker(NewWorkerCover())
	if c.NeverFired() != nil || c.ZeroYield() != nil || c.ActionNames() != nil || c.TotalFired() != 0 {
		t.Fatal("nil cover not a no-op")
	}
	var w *WorkerCover
	w.Observe("A", 0, true)
	w.SymmetryHit()
	NewCover("bfs", nil).MergeWorker(w)
}
