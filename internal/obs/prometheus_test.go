package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var (
	promNameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (-?[0-9]+(\.[0-9]+)?([eE][-+]?[0-9]+)?|NaN|[+-]Inf)$`)
	promLabelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`)
)

// validatePromText enforces promtool-style line rules on a Prometheus
// text-format (0.0.4) exposition: legal metric and label names, parseable
// values, a TYPE line before the first sample of each family, histogram
// samples restricted to _bucket/_sum/_count with an le label and cumulative
// bucket counts ending at +Inf.
func validatePromText(t *testing.T, text string) {
	t.Helper()
	if !strings.HasSuffix(text, "\n") {
		t.Fatal("exposition must end with a newline")
	}
	types := map[string]string{} // family -> counter|gauge|histogram
	var lastBucket map[string]int64
	var lastBucketFamily string
	sawInf := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) < 2 || !promNameRe.MatchString(parts[0]) {
				t.Fatalf("line %d: malformed HELP: %q", lineNo, line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 || !promNameRe.MatchString(parts[0]) {
				t.Fatalf("line %d: malformed TYPE: %q", lineNo, line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown type %q", lineNo, parts[1])
			}
			if _, dup := types[parts[0]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", lineNo, parts[0])
			}
			types[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment form: %q", lineNo, line)
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample: %q", lineNo, line)
		}
		name, labels := m[1], m[3]
		if labels != "" {
			for _, lp := range strings.Split(labels, ",") {
				if !promLabelRe.MatchString(lp) {
					t.Fatalf("line %d: malformed label pair %q", lineNo, lp)
				}
			}
		}
		family := name
		isBucket := false
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			if f, ok := strings.CutSuffix(name, sfx); ok {
				if _, histo := types[f]; histo {
					family = f
					isBucket = sfx == "_bucket"
					break
				}
			}
		}
		typ, ok := types[family]
		if !ok {
			t.Fatalf("line %d: sample %s has no preceding TYPE line", lineNo, name)
		}
		if typ == "histogram" && family == name && !isBucket {
			t.Fatalf("line %d: histogram family %s has bare sample %s", lineNo, family, name)
		}
		if isBucket {
			if !strings.Contains(labels, `le="`) {
				t.Fatalf("line %d: bucket sample without le label: %q", lineNo, line)
			}
			v, err := strconv.ParseInt(m[4], 10, 64)
			if err != nil {
				t.Fatalf("line %d: bucket count %q not an integer", lineNo, m[4])
			}
			if lastBucketFamily != family {
				lastBucketFamily, lastBucket = family, map[string]int64{}
			}
			if prev, ok := lastBucket["cum"]; ok && v < prev {
				t.Fatalf("line %d: bucket counts not cumulative (%d < %d)", lineNo, v, prev)
			}
			lastBucket["cum"] = v
			if strings.Contains(labels, `le="+Inf"`) {
				sawInf[family] = true
			}
		}
	}
	for family, typ := range types {
		if typ == "histogram" && !sawInf[family] {
			t.Fatalf("histogram %s has no +Inf bucket", family)
		}
	}
}

// TestWritePrometheusFormat renders a mixed registry and validates the
// exposition against the promtool-style rules, then spot-checks values.
func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("transitions").Add(42)
	reg.Counter("phase.explore_ns").Add(123456)
	reg.Gauge("queue_len").Set(7)
	reg.Gauge("fpset.entries").Set(99)
	reg.Gauge("conformance.worker[0].walks").Set(3)
	h := reg.Histogram("walk_depth", []int64{5, 10, 100})
	for _, v := range []int64{1, 4, 6, 7, 50, 2000} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := WritePrometheus(&b, reg); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	validatePromText(t, text)

	for _, want := range []string{
		"sandtable_transitions 42",
		"sandtable_phase_explore_ns 123456",
		"sandtable_queue_len 7",
		"sandtable_fpset_entries 99",
		"sandtable_conformance_worker_0__walks 3",
		`sandtable_walk_depth_bucket{le="5"} 2`,
		`sandtable_walk_depth_bucket{le="10"} 4`,
		`sandtable_walk_depth_bucket{le="100"} 5`,
		`sandtable_walk_depth_bucket{le="+Inf"} 6`,
		"sandtable_walk_depth_count 6",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	// Rendering is deterministic.
	var b2 strings.Builder
	if err := WritePrometheus(&b2, reg); err != nil {
		t.Fatal(err)
	}
	if b2.String() != text {
		t.Fatal("non-deterministic exposition")
	}

	// Nil registry renders nothing and errors nowhere.
	if err := WritePrometheus(io.Discard, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsEndpoint scrapes the /metrics endpoint of a live ServeDebug
// server and validates the response like a Prometheus scraper would.
func TestMetricsEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("distinct_states").Add(1234)
	reg.Histogram("depth", []int64{1, 10}).Observe(3)
	addr, stop, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	validatePromText(t, text)
	if !strings.Contains(text, "sandtable_distinct_states 1234") {
		t.Fatalf("scrape missing counter:\n%s", text)
	}
}

// TestPromName checks metric-name sanitisation keeps names legal.
func TestPromName(t *testing.T) {
	cases := map[string]string{
		"distinct_states":             "sandtable_distinct_states",
		"fpset.entries":               "sandtable_fpset_entries",
		"conformance.worker[3].walks": "sandtable_conformance_worker_3__walks",
		"0weird":                      "sandtable_0weird",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
		if !promNameRe.MatchString(promName(in)) {
			t.Fatalf("promName(%q) = %q not legal", in, promName(in))
		}
	}
}

// TestPublishRepointsRegistry is the regression test for the stale-registry
// bug: a second Registry published under the same expvar name must replace
// the first at the endpoint, not be silently dropped.
func TestPublishRepointsRegistry(t *testing.T) {
	reg1 := NewRegistry()
	reg1.Counter("run").Add(1)
	h := publish("sandtable_test_republish", reg1)
	if got := h.load().Counter("run").Value(); got != 1 {
		t.Fatalf("first publish: run = %d", got)
	}

	reg2 := NewRegistry()
	reg2.Counter("run").Add(2)
	h2 := publish("sandtable_test_republish", reg2)
	if h2 != h {
		t.Fatal("republish created a second holder for the same name")
	}
	if got := h.load().Counter("run").Value(); got != 2 {
		t.Fatalf("endpoint still serves the stale registry: run = %d, want 2", got)
	}

	// The expvar endpoint (which closes over the holder) sees the swap too:
	// two ServeDebug servers in one process, second registry wins.
	addr1, stop1, err := ServeDebug("127.0.0.1:0", reg1mark(1))
	if err != nil {
		t.Fatal(err)
	}
	defer stop1()
	addr2, stop2, err := ServeDebug("127.0.0.1:0", reg1mark(2))
	if err != nil {
		t.Fatal(err)
	}
	defer stop2()
	for _, addr := range []string{addr1, addr2} {
		resp, err := http.Get("http://" + addr + "/debug/vars")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(body), `"mark":2`) {
			t.Fatalf("expvar on %s serves a stale registry:\n%s", addr, body)
		}
	}
}

func reg1mark(v int64) *Registry {
	r := NewRegistry()
	r.Gauge("mark").Set(v)
	return r
}

// TestPublishConcurrent republishes under one name from many goroutines
// while snapshotting — the indirection must be race-free (run with -race).
func TestPublishConcurrent(t *testing.T) {
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				r := NewRegistry()
				r.Counter(fmt.Sprintf("g%d", g)).Add(int64(i))
				h := publish("sandtable_test_concurrent", r)
				_ = h.load().Snapshot()
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
