package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Event is one structured observability event, written as a single JSON
// line. It records what a layer actually did — a replayed engine step, a
// vnet send/deliver/drop, a node crash/restart, a virtual-clock advance, a
// BFS level, a walk step — so an implementation-level replay leaves a
// replayable, diffable record alongside the specification trace (the raw
// material trace-validation work such as "Validating Traces of Distributed
// Programs Against TLA+ Specifications" builds on).
type Event struct {
	// V is the trace schema version (assigned on emit; see
	// TraceSchemaVersion for the versioning policy).
	V int `json:"v"`
	// Seq is a per-tracer monotonic sequence number (assigned on emit).
	Seq int64 `json:"seq"`
	// Layer names the emitting subsystem: "engine", "vnet", "replay",
	// "spec", "conformance".
	Layer string `json:"layer"`
	// Kind is the event kind within the layer, e.g. "DeliverMessage",
	// "send", "clock-advance", "level", "diverge".
	Kind string `json:"kind"`
	// Node is the primary node (-1 when not node-scoped).
	Node int `json:"node"`
	// Peer is the counterpart node, when any.
	Peer int `json:"peer,omitempty"`
	// Index selects a buffered message, when relevant.
	Index int `json:"index,omitempty"`
	// Detail carries free-form key/value context (payload, durations,
	// error text).
	Detail map[string]string `json:"detail,omitempty"`
}

// Tracer writes events as JSON lines to a sink. It is concurrency-safe and
// nil-safe: a nil *Tracer accepts Emit calls as no-ops, so layers emit
// unconditionally. The first write error is latched and reported by Err;
// later emits are dropped.
type Tracer struct {
	mu  sync.Mutex
	w   *bufio.Writer
	enc *json.Encoder
	seq int64
	err error
	tee func(Event)
}

// NewTracer builds a tracer writing JSONL to w.
func NewTracer(w io.Writer) *Tracer {
	bw := bufio.NewWriter(w)
	return &Tracer{w: bw, enc: json.NewEncoder(bw)}
}

// Emit assigns the next sequence number and writes the event. No-op on a
// nil tracer or after a write error.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.seq++
	e.Seq = t.seq
	e.V = TraceSchemaVersion
	if t.tee != nil {
		t.tee(e)
	}
	t.err = t.enc.Encode(e)
}

// Tee registers fn to receive a copy of every event Emit writes, after its
// sequence number is assigned — the hook a live subscriber fan-out (see
// Fanout) attaches to without touching the JSONL artifact. fn runs under the
// tracer lock and must not call back into the tracer or block. A nil fn
// detaches the tee; no-op on a nil tracer.
func (t *Tracer) Tee(fn func(Event)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tee = fn
}

// Events returns the number of events emitted so far.
func (t *Tracer) Events() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Flush drains the buffer to the underlying writer and returns the first
// error encountered (emit or flush). Call before closing the sink.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	t.err = t.w.Flush()
	return t.err
}

// Err returns the latched write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// ReadEvents parses a JSONL event stream back into events — the round-trip
// used by tests and by external diffing tools.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: read trace: %w", err)
	}
	return out, nil
}
