package obs

import "sync"

// Fanout broadcasts observability events to a dynamic set of subscribers —
// the bridge between one run's tracer/reporter (attached via Tracer.Tee and
// a progress callback) and any number of live listeners such as SSE
// streams. It is concurrency-safe and decouples publishers from consumers:
//
//   - A bounded replay buffer keeps the most recent events, so a subscriber
//     joining mid-run first receives everything published so far (from the
//     start of the run unless the buffer overflowed) and then the live tail
//     with no gap and no duplicates: the replay snapshot and the channel
//     registration happen under one lock.
//   - Each subscriber gets its own buffered channel. A subscriber that
//     stops draining loses events (dropped, counted) rather than blocking
//     the publisher — the run never waits on a slow consumer.
//
// A nil *Fanout ignores Publish and Close, so callers can wire it
// unconditionally.
type Fanout struct {
	mu      sync.Mutex
	closed  bool
	buf     []Event
	maxBuf  int
	dropped int64
	subs    map[int]chan Event
	nextID  int
}

// NewFanout builds a fan-out whose replay buffer keeps at most replayMax
// events (<= 0 means 4096). When the buffer overflows, the oldest events are
// evicted: late subscribers then see a truncated prefix, but sequence
// numbers stay strictly increasing.
func NewFanout(replayMax int) *Fanout {
	if replayMax <= 0 {
		replayMax = 4096
	}
	return &Fanout{maxBuf: replayMax, subs: make(map[int]chan Event)}
}

// Publish appends e to the replay buffer and offers it to every subscriber
// without blocking. After Close it is a no-op.
func (f *Fanout) Publish(e Event) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.buf = append(f.buf, e)
	if over := len(f.buf) - f.maxBuf; over > 0 {
		f.dropped += int64(over)
		f.buf = append(f.buf[:0:0], f.buf[over:]...)
	}
	for _, ch := range f.subs {
		select {
		case ch <- e:
		default:
			f.dropped++
		}
	}
}

// Subscribe atomically snapshots the replay buffer and registers a new
// subscriber, so replay followed by the channel yields every event exactly
// once. buffer sizes the live channel (<= 0 means 256). cancel deregisters
// and closes the channel; it is idempotent and safe after Close. On a
// closed fan-out the returned channel is already closed, so a consumer
// ranging over it sees the replay and terminates.
func (f *Fanout) Subscribe(buffer int) (replay []Event, events <-chan Event, cancel func()) {
	if buffer <= 0 {
		buffer = 256
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	replay = append([]Event(nil), f.buf...)
	ch := make(chan Event, buffer)
	if f.closed {
		close(ch)
		return replay, ch, func() {}
	}
	id := f.nextID
	f.nextID++
	f.subs[id] = ch
	var once sync.Once
	cancel = func() {
		once.Do(func() {
			f.mu.Lock()
			defer f.mu.Unlock()
			if sch, ok := f.subs[id]; ok {
				delete(f.subs, id)
				close(sch)
			}
		})
	}
	return replay, ch, cancel
}

// Close ends the stream: every subscriber channel is closed (consumers
// ranging over them terminate after draining) and later Publish calls are
// dropped. The replay buffer stays readable, so a subscriber arriving after
// Close still receives the run's tail. Idempotent.
func (f *Fanout) Close() {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	for id, ch := range f.subs {
		delete(f.subs, id)
		close(ch)
	}
}

// Dropped reports how many events were lost to slow subscribers plus how
// many were evicted from the replay buffer — the service exposes it so a
// consumer can tell a complete stream from a sampled one.
func (f *Fanout) Dropped() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}
