package obs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestFanoutReplayThenLive: a subscriber joining mid-stream sees every event
// exactly once — the published prefix via replay, the rest via the channel.
func TestFanoutReplayThenLive(t *testing.T) {
	f := NewFanout(0)
	for i := 0; i < 10; i++ {
		f.Publish(Event{Seq: int64(i + 1), Layer: "obs", Kind: "x"})
	}
	replay, events, cancel := f.Subscribe(64)
	defer cancel()
	if len(replay) != 10 {
		t.Fatalf("replay = %d events, want 10", len(replay))
	}
	for i := 10; i < 20; i++ {
		f.Publish(Event{Seq: int64(i + 1), Layer: "obs", Kind: "x"})
	}
	f.Close()
	var got []int64
	for _, e := range replay {
		got = append(got, e.Seq)
	}
	for e := range events {
		got = append(got, e.Seq)
	}
	if len(got) != 20 {
		t.Fatalf("saw %d events, want 20", len(got))
	}
	for i, seq := range got {
		if seq != int64(i+1) {
			t.Fatalf("event %d has seq %d, want %d (duplicate or gap)", i, seq, i+1)
		}
	}
	if f.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0", f.Dropped())
	}
}

// TestFanoutSlowSubscriberDrops: a subscriber that never drains loses events
// without blocking Publish, and the loss is counted.
func TestFanoutSlowSubscriberDrops(t *testing.T) {
	f := NewFanout(1 << 16)
	_, events, cancel := f.Subscribe(4)
	defer cancel()
	for i := 0; i < 100; i++ {
		f.Publish(Event{Seq: int64(i + 1)})
	}
	if got := len(events); got != 4 {
		t.Errorf("channel holds %d events, want 4", got)
	}
	if f.Dropped() != 96 {
		t.Errorf("dropped = %d, want 96", f.Dropped())
	}
}

// TestFanoutReplayEviction: the replay buffer is bounded; old events are
// evicted and counted.
func TestFanoutReplayEviction(t *testing.T) {
	f := NewFanout(8)
	for i := 0; i < 20; i++ {
		f.Publish(Event{Seq: int64(i + 1)})
	}
	replay, _, cancel := f.Subscribe(1)
	cancel()
	if len(replay) != 8 {
		t.Fatalf("replay = %d events, want 8", len(replay))
	}
	if replay[0].Seq != 13 || replay[7].Seq != 20 {
		t.Errorf("replay window = [%d,%d], want [13,20]", replay[0].Seq, replay[7].Seq)
	}
	if f.Dropped() != 12 {
		t.Errorf("dropped = %d, want 12", f.Dropped())
	}
}

// TestFanoutCloseAndCancel: Close terminates consumers; cancel is idempotent
// and safe after Close; a post-Close subscriber still gets the replay with
// an already-closed channel; Publish after Close is a no-op.
func TestFanoutCloseAndCancel(t *testing.T) {
	f := NewFanout(0)
	f.Publish(Event{Seq: 1})
	_, events, cancel := f.Subscribe(1)
	f.Close()
	if _, ok := <-events; ok {
		t.Errorf("subscriber channel not closed by Close")
	}
	cancel()
	cancel()
	f.Close()
	f.Publish(Event{Seq: 2})
	replay, late, _ := f.Subscribe(1)
	if len(replay) != 1 || replay[0].Seq != 1 {
		t.Errorf("post-Close replay = %v", replay)
	}
	if _, ok := <-late; ok {
		t.Errorf("post-Close subscription channel is open")
	}
}

// TestFanoutNil: a nil fan-out ignores every call.
func TestFanoutNil(t *testing.T) {
	var f *Fanout
	f.Publish(Event{})
	f.Close()
	if f.Dropped() != 0 {
		t.Errorf("nil Dropped != 0")
	}
}

// TestFanoutConcurrent hammers publish/subscribe/cancel from many
// goroutines; the race detector is the assertion.
func TestFanoutConcurrent(t *testing.T) {
	f := NewFanout(128)
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f.Publish(Event{Seq: int64(p*500 + i + 1)})
			}
		}(p)
	}
	for s := 0; s < 8; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			replay, events, cancel := f.Subscribe(16)
			_ = replay
			for range 20 {
				select {
				case <-events:
				default:
				}
			}
			cancel()
		}()
	}
	wg.Wait()
	f.Close()
}

// TestTracerTee: every event emitted through the tracer also reaches the tee
// with its sequence number and schema version already assigned.
func TestTracerTee(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	var teed []Event
	tr.Tee(func(e Event) { teed = append(teed, e) })
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Layer: "obs", Kind: fmt.Sprintf("k%d", i), Node: -1})
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(teed) != 5 {
		t.Fatalf("tee saw %d events, want 5", len(teed))
	}
	for i, e := range teed {
		if e.Seq != int64(i+1) || e.V != TraceSchemaVersion {
			t.Errorf("teed event %d: seq=%d v=%d", i, e.Seq, e.V)
		}
		if err := ValidateEvent(e); err != nil {
			t.Errorf("teed event %d invalid: %v", i, err)
		}
	}
	// Detaching the tee stops the callbacks.
	tr.Tee(nil)
	tr.Emit(Event{Layer: "obs", Kind: "after", Node: -1})
	if len(teed) != 5 {
		t.Errorf("tee saw %d events after detach, want 5", len(teed))
	}
}
